module Prefix = Netaddr.Prefix

let fresh_registry () = Rpki.Registry.create ~seed:97

let enroll registry asn =
  match Rpki.Registry.enroll registry ~asn ~prefixes:[ Netsim_prefix.of_as asn ] with
  | Ok _ -> ()
  | Error e -> invalid_arg e

let origin_hijack_detected () =
  let registry = fresh_registry () in
  let victim = 64500 and attacker = 64666 and observer = 64501 in
  enroll registry victim;
  enroll registry attacker;
  enroll registry observer;
  (* The attacker originates the victim's prefix under its own ASN. *)
  let hijack =
    Sbgp.forge ~prefix:(Netsim_prefix.of_as victim) ~path:[ attacker ] ~target:observer
  in
  match Sbgp.validate registry ~receiver:observer hijack with
  | Error (Sbgp.Origin_invalid Rpki.Roa.Invalid_origin) -> true
  | Ok () | Error _ -> false

let path_forgery_detected () =
  let registry = fresh_registry () in
  let origin = 1 and honest = 2 and attacker = 3 and observer = 4 in
  List.iter (enroll registry) [ origin; honest; attacker; observer ];
  let prefix = Netsim_prefix.of_as origin in
  let step1 = Sbgp.originate registry ~origin ~prefix ~target:honest ~signed:true in
  match step1 with
  | Error _ -> false
  | Ok ann -> begin
      (* The attacker claims to be adjacent to the origin, splicing
         itself in place of [honest]: it reuses the origin's signed
         announcement (made out to [honest]) and forwards it as its
         own. *)
      match Sbgp.forward registry ~sender:attacker ~target:observer ~signed:true ann with
      | Error _ -> false
      | Ok spliced -> begin
          match Sbgp.validate registry ~receiver:observer spliced with
          | Error (Sbgp.Wrong_target _ | Sbgp.Bad_signature _) -> true
          | Ok () | Error _ -> false
        end
    end

let replay_to_wrong_neighbor_detected () =
  let registry = fresh_registry () in
  let origin = 10 and a = 11 and b = 12 in
  List.iter (enroll registry) [ origin; a; b ];
  let prefix = Netsim_prefix.of_as origin in
  match Sbgp.originate registry ~origin ~prefix ~target:a ~signed:true with
  | Error _ -> false
  | Ok ann -> begin
      (* Replay the copy made out to [a] directly to [b]: caught by
         the addressing check; even an attacker that also rewrites the
         target field is caught by the per-target attestation. *)
      let direct =
        match Sbgp.validate registry ~receiver:b ann with
        | Error (Sbgp.Misdirected _) -> true
        | Ok () | Error _ -> false
      in
      let retargeted =
        let rewritten =
          Sbgp.of_wire_parts ~prefix:ann.Sbgp.prefix ~path:ann.Sbgp.path ~target:b
            ~sigs:ann.Sbgp.sigs
        in
        match Sbgp.validate registry ~receiver:b rewritten with
        | Error (Sbgp.Bad_signature _ | Sbgp.Wrong_target _) -> true
        | Ok () | Error _ -> false
      in
      direct && retargeted
    end

let delegation_risk () =
  let registry = fresh_registry () in
  let stub = 64700 and provider = 64701 and observer = 64702 in
  List.iter (enroll registry) [ stub; provider; observer ];
  ignore provider;
  let prefix = Netsim_prefix.of_as stub in
  (* With delegation the provider holds the stub's signing key and can
     fabricate exactly the announcement the stub itself would have
     produced — indistinguishable to any verifier. (Holding the key is
     the delegation; [Sbgp.originate] signs with it.) *)
  let forged_with_delegation =
    match Sbgp.originate registry ~origin:stub ~prefix ~target:observer ~signed:true with
    | Ok ann -> Result.is_ok (Sbgp.validate registry ~receiver:observer ann)
    | Error _ -> false
  in
  (* Without delegation the provider can only emit an unsigned claim
     in the stub's name, which validation rejects. *)
  let forged_without_delegation =
    let forged = Sbgp.forge ~prefix ~path:[ stub ] ~target:observer in
    Result.is_ok (Sbgp.validate registry ~receiver:observer forged)
  in
  (forged_with_delegation, forged_without_delegation)

type appendix_b_outcome = { chose_false_path : bool; next_hop : int }

let appendix_b ~prefer_partial =
  let registry = fresh_registry () in
  let v = 1 and s = 2 and r = 3 and q = 4 and p = 5 and m = 6 in
  (* Only p and q deployed S*BGP; v additionally has a ROA (origin
     validation passes for both candidate paths, so everything hinges
     on path preference). *)
  enroll registry p;
  enroll registry q;
  enroll registry v;
  let prefix = Netsim_prefix.of_as v in
  (* True path: v -> s -> r -> p, no attestations (v signs its
     origination but s and r are insecure, so the chain is broken; we
     model the common case where the insecure hops just strip /
     never add attestations). *)
  let true_ann = Sbgp.forge ~prefix ~path:[ r; s; v ] ~target:p in
  (* False path: m forges the link (m, v) and announces to q; q
     honestly appends itself and forwards to p. *)
  let false_at_q = Sbgp.forge ~prefix ~path:[ m; v ] ~target:q in
  let false_ann =
    match Sbgp.forward registry ~sender:q ~target:p ~signed:true false_at_q with
    | Ok ann -> ann
    | Error _ -> assert false
  in
  (* Both paths are 3 hops and neither validates fully. The sound
     policy treats them as equally (in)secure and falls back to the
     tie break, which prefers the route through r (lower id). The
     unsound policy ranks by how many hops are RPKI-enrolled. *)
  let fully_valid ann = Result.is_ok (Sbgp.validate registry ~receiver:p ann) in
  let score ann =
    let full = if fully_valid ann then 1 else 0 in
    let partial = if prefer_partial then Sbgp.enrolled_hops registry ann else 0 in
    ((full, partial), ann)
  in
  let (score_true, _) = score true_ann in
  let (score_false, _) = score false_ann in
  let chosen =
    if score_false > score_true then false_ann
    else if score_true > score_false then true_ann
    else begin
      (* Tie break by next-hop id (r = 3 < q = 4). *)
      let next ann = match ann.Sbgp.path with h :: _ -> h | [] -> max_int in
      if next true_ann <= next false_ann then true_ann else false_ann
    end
  in
  {
    chose_false_path = chosen == false_ann;
    next_hop = (match chosen.Sbgp.path with h :: _ -> h | [] -> -1);
  }
