(** Per-AS S*BGP participation modes (Section 2.2.1). *)

type t =
  | Off  (** plain BGP *)
  | Simplex
      (** signs outgoing announcements for its own prefixes only and
          validates nothing — the lightweight stub deployment *)
  | Full  (** signs everything it propagates and validates everything *)

val signs_origination : t -> bool
val signs_transit : t -> bool
val validates : t -> bool
val to_string : t -> string
val equal : t -> t -> bool
