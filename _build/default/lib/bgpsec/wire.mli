(** Wire encoding of S-BGP announcements.

    A compact big-endian binary format (the flavour of encoding a
    router implementation would put in an UPDATE attribute):

    {v
      magic   "SBG1"                      (4 bytes)
      prefix  network (u32), length (u8)
      target  u32
      path    count (u16), count * asn (u32)   -- sender first
      sigs    count (u16), count * (key_id (32 bytes), tag (32 bytes))
    v} *)

type error =
  | Truncated
  | Bad_magic
  | Bad_prefix
  | Too_long of string  (** which field exceeded its width *)

val error_to_string : error -> string

val encode : Sbgp.announcement -> string
(** Raises [Invalid_argument] when a count exceeds the u16 field or an
    ASN exceeds 32 bits. *)

val decode : string -> (Sbgp.announcement, error) result
(** Strict: trailing bytes are an error ([Truncated] is also returned
    for any short read). *)

val decode_prefix : string -> pos:int -> (Netaddr.Prefix.t * int, error) result
(** Decode one prefix field at [pos]; returns the value and the next
    position (exposed for tests and future message types). *)
