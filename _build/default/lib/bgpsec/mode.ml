type t = Off | Simplex | Full

let signs_origination = function Off -> false | Simplex | Full -> true
let signs_transit = function Off | Simplex -> false | Full -> true
let validates = function Off | Simplex -> false | Full -> true
let to_string = function Off -> "off" | Simplex -> "simplex" | Full -> "full"

let equal a b =
  match (a, b) with
  | Off, Off | Simplex, Simplex | Full, Full -> true
  | (Off | Simplex | Full), _ -> false
