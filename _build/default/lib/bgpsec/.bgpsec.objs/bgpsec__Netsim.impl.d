lib/bgpsec/netsim.ml: Array Asgraph Bgp List Mode Netaddr Netsim_prefix Option Result Rpki Sbgp Sobgp
