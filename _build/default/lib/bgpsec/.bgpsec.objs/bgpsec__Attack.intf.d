lib/bgpsec/attack.mli:
