lib/bgpsec/netsim_prefix.ml: Netaddr
