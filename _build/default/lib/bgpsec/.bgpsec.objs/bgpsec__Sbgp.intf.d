lib/bgpsec/sbgp.mli: Netaddr Rpki Scrypto
