lib/bgpsec/session.mli: Asgraph Bgp Mode Netsim Sbgp
