lib/bgpsec/attack.ml: List Netaddr Netsim_prefix Result Rpki Sbgp
