lib/bgpsec/sobgp.ml: Hashtbl Printf Rpki Scrypto
