lib/bgpsec/mode.ml:
