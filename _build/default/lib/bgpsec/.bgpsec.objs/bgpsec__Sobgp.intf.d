lib/bgpsec/sobgp.mli: Rpki Scrypto
