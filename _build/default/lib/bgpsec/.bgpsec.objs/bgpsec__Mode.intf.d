lib/bgpsec/mode.mli:
