lib/bgpsec/netsim.mli: Asgraph Bgp Mode Netaddr Rpki Sbgp Sobgp
