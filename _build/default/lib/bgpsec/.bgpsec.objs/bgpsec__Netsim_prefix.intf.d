lib/bgpsec/netsim_prefix.mli: Netaddr
