lib/bgpsec/wire.ml: Buffer Char List Netaddr Printf Result Sbgp Scrypto String
