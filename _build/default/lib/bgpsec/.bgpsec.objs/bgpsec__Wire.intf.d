lib/bgpsec/wire.mli: Netaddr Sbgp
