lib/bgpsec/sbgp.ml: List Netaddr Printf Rpki Scrypto String
