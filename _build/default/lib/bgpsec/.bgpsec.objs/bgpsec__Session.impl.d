lib/bgpsec/session.ml: Array Asgraph Bgp Hashtbl List Mode Netaddr Netsim Netsim_prefix Option Queue Sbgp String Wire
