module Graph = Asgraph.Graph
module Prefix = Netaddr.Prefix

type selection = { ann : Sbgp.announcement; from : int; lp : int }

type t = {
  setup : Netsim.setup;
  (* Adj-RIB-In: per (node, peer, prefix) the last announcement
     received on that session (replacement = implicit withdrawal). *)
  adj_in : (int * int * Prefix.t, Sbgp.announcement) Hashtbl.t;
  (* Loc-RIB: per (node, prefix) the selected route. *)
  loc : (int * Prefix.t, selection) Hashtbl.t;
  queue : (int * int * string) Queue.t;  (* (from, to, wire bytes) *)
  announced : (int, unit) Hashtbl.t;
  mutable processed : int;
  mutable bytes : int;
}

let create ?protocol ?tiebreak ?seed g ~modes =
  {
    setup = Netsim.prepare ?protocol ?tiebreak ?seed g ~modes;
    adj_in = Hashtbl.create 1024;
    loc = Hashtbl.create 256;
    queue = Queue.create ();
    announced = Hashtbl.create 16;
    processed = 0;
    bytes = 0;
  }

let lp_of g u v =
  match Graph.rel g u v with
  | Some Graph.Customer -> 0
  | Some Graph.Peer -> 1
  | Some Graph.Provider -> 2
  | None -> invalid_arg "Session: not adjacent"

(* GR2: may [u] export its selection for [prefix] to neighbor [v]? *)
let may_export t u v prefix ~is_origin =
  is_origin
  ||
  match Hashtbl.find_opt t.loc (u, prefix) with
  | None -> false
  | Some sel -> lp_of t.setup.Netsim.graph u v = 0 (* v is u's customer *) || sel.lp = 0

let send t ~sender ~target ann ~signed =
  match Sbgp.forward t.setup.Netsim.registry ~sender ~target ~signed ann with
  | Error _ -> ()
  | Ok fwd ->
      let bytes = Wire.encode fwd in
      t.bytes <- t.bytes + String.length bytes;
      Queue.add (sender, target, bytes) t.queue

let originate_to t ~origin ~target prefix =
  let signed = Mode.signs_origination t.setup.Netsim.modes.(origin) in
  match Sbgp.originate t.setup.Netsim.registry ~origin ~prefix ~target ~signed with
  | Error _ -> begin
      match
        Sbgp.originate t.setup.Netsim.registry ~origin ~prefix ~target ~signed:false
      with
      | Ok ann ->
          let bytes = Wire.encode ann in
          t.bytes <- t.bytes + String.length bytes;
          Queue.add (origin, target, bytes) t.queue
      | Error _ -> ()
    end
  | Ok ann ->
      let bytes = Wire.encode ann in
      t.bytes <- t.bytes + String.length bytes;
      Queue.add (origin, target, bytes) t.queue

let iter_neighbors g u f =
  Graph.iter_customers g u (fun v -> f v);
  Graph.iter_peers g u (fun v -> f v);
  Graph.iter_providers g u (fun v -> f v)

(* Re-run best-route selection at [u] for [prefix] from its
   Adj-RIB-Ins; returns the new selection. *)
let select t u prefix =
  let g = t.setup.Netsim.graph in
  let best = ref None in
  let consider v =
    match Hashtbl.find_opt t.adj_in (u, v, prefix) with
    | None -> ()
    | Some ann ->
        if not (List.mem u ann.Sbgp.path) then begin
          let lp = lp_of g u v in
          let len = List.length ann.Sbgp.path in
          let sec =
            Mode.validates t.setup.Netsim.modes.(u)
            && Netsim.validated t.setup ~receiver:u ann
          in
          let key =
            ( lp,
              len,
              (if sec then 0 else 1),
              Bgp.Policy.tiebreak_key t.setup.Netsim.tiebreak u v )
          in
          match !best with
          | Some (bkey, _) when bkey <= key -> ()
          | _ -> best := Some (key, { ann; from = v; lp })
        end
  in
  iter_neighbors g u consider;
  Option.map snd !best

let drain t =
  let g = t.setup.Netsim.graph in
  while not (Queue.is_empty t.queue) do
    let sender, receiver, bytes = Queue.take t.queue in
    t.processed <- t.processed + 1;
    match Wire.decode bytes with
    | Error _ -> ()
    | Ok ann ->
        Hashtbl.replace t.adj_in (receiver, sender, ann.Sbgp.prefix) ann;
        let prefix = ann.Sbgp.prefix in
        let before = Hashtbl.find_opt t.loc (receiver, prefix) in
        let after = select t receiver prefix in
        let changed =
          match (before, after) with
          | None, None -> false
          | Some a, Some b -> a.from <> b.from || a.ann.Sbgp.path <> b.ann.Sbgp.path
          | None, Some _ | Some _, None -> true
        in
        if changed then begin
          (match after with
          | Some sel -> Hashtbl.replace t.loc (receiver, prefix) sel
          | None -> Hashtbl.remove t.loc (receiver, prefix));
          match after with
          | None -> ()
          | Some sel ->
              let signed = Mode.signs_transit t.setup.Netsim.modes.(receiver) in
              iter_neighbors g receiver (fun v ->
                  if v <> sel.from && may_export t receiver v prefix ~is_origin:false
                  then send t ~sender:receiver ~target:v sel.ann ~signed)
        end
  done

let announce t ~origin =
  let g = t.setup.Netsim.graph in
  if origin < 0 || origin >= Graph.n g then invalid_arg "Session.announce";
  if not (Hashtbl.mem t.announced origin) then begin
    Hashtbl.replace t.announced origin ();
    let prefix = Netsim_prefix.of_as origin in
    iter_neighbors g origin (fun v -> originate_to t ~origin ~target:v prefix);
    drain t
  end

let selected t ~node ~origin =
  Option.map
    (fun sel -> sel.ann)
    (Hashtbl.find_opt t.loc (node, Netsim_prefix.of_as origin))

let selected_path t ~node ~origin =
  match selected t ~node ~origin with
  | None -> []
  | Some ann -> node :: ann.Sbgp.path

let route_validated t ~node ~origin =
  match selected t ~node ~origin with
  | None -> false
  | Some ann ->
      (not (Mode.equal t.setup.Netsim.modes.(node) Mode.Off))
      && Netsim.validated t.setup ~receiver:node ann

let messages_processed t = t.processed
let bytes_on_wire t = t.bytes
