module Prefix = Netaddr.Prefix
module Sig_scheme = Scrypto.Sig_scheme

type announcement = {
  prefix : Prefix.t;
  path : int list;  (* sender first, origin last *)
  target : int;
  sigs : Sig_scheme.signature list;  (* origin first *)
}

type error =
  | Not_enrolled of int
  | Unsigned_hop of int
  | Bad_signature of int
  | Wrong_target of { signer : int; expected : int }
  | Misdirected of { target : int; receiver : int }
  | Origin_invalid of Rpki.Roa.validity
  | Empty_path

let error_to_string = function
  | Not_enrolled asn -> Printf.sprintf "AS %d not enrolled in the RPKI" asn
  | Unsigned_hop asn -> Printf.sprintf "hop AS %d carries no attestation" asn
  | Bad_signature asn -> Printf.sprintf "attestation of AS %d does not verify" asn
  | Wrong_target { signer; expected } ->
      Printf.sprintf "attestation of AS %d was made for AS %d" signer expected
  | Misdirected { target; receiver } ->
      Printf.sprintf "announcement addressed to AS %d received by AS %d" target receiver
  | Origin_invalid v ->
      Printf.sprintf "origin validation failed: %s" (Rpki.Roa.validity_to_string v)
  | Empty_path -> "empty AS path"

(* Byte string covered by hop j's attestation: the prefix, the path
   from the origin up to and including the signer, and the AS the
   announcement is being sent to. *)
let to_be_signed ~prefix ~path_from_origin ~target =
  Printf.sprintf "sbgp|%s|%s|%d" (Prefix.to_string prefix)
    (String.concat "," (List.map string_of_int path_from_origin))
    target

let fully_signed ann = List.length ann.sigs = List.length ann.path

let originate registry ~origin ~prefix ~target ~signed =
  if not signed then Ok { prefix; path = [ origin ]; target; sigs = [] }
  else begin
    match Rpki.Registry.keypair_of registry ~asn:origin with
    | None -> Error (Not_enrolled origin)
    | Some keypair ->
        let tbs = to_be_signed ~prefix ~path_from_origin:[ origin ] ~target in
        Ok { prefix; path = [ origin ]; target; sigs = [ Sig_scheme.sign keypair tbs ] }
  end

let forward registry ~sender ~target ~signed ann =
  let path = sender :: ann.path in
  let base = { ann with path; target } in
  if not (signed && fully_signed ann) then Ok base
  else begin
    match Rpki.Registry.keypair_of registry ~asn:sender with
    | None -> Error (Not_enrolled sender)
    | Some keypair ->
        let path_from_origin = List.rev path in
        let tbs = to_be_signed ~prefix:ann.prefix ~path_from_origin ~target in
        Ok { base with sigs = ann.sigs @ [ Sig_scheme.sign keypair tbs ] }
  end

let validate registry ~receiver ann =
  if ann.target <> receiver then
    Error (Misdirected { target = ann.target; receiver })
  else begin
  let vs = List.rev ann.path in
  (* origin first *)
  match vs with
  | [] -> Error Empty_path
  | origin :: _ -> begin
      match Rpki.Registry.origin_validity registry ~prefix:ann.prefix ~origin_asn:origin with
      | (Rpki.Roa.Invalid_origin | Rpki.Roa.Invalid_length | Rpki.Roa.Unknown) as v ->
          Error (Origin_invalid v)
      | Rpki.Roa.Valid ->
          let rec check prefix_path vs sigs =
            match (vs, sigs) with
            | [], [] -> Ok ()
            | v :: _, [] -> Error (Unsigned_hop v)
            | [], _ :: _ -> Error Empty_path (* more sigs than hops: malformed *)
            | v :: vrest, s :: srest -> begin
                match Rpki.Registry.keypair_of registry ~asn:v with
                | None -> Error (Not_enrolled v)
                | Some verification_key ->
                    let prefix_path = prefix_path @ [ v ] in
                    let t = match vrest with next :: _ -> next | [] -> receiver in
                    let tbs =
                      to_be_signed ~prefix:ann.prefix ~path_from_origin:prefix_path
                        ~target:t
                    in
                    if Sig_scheme.verify ~verification_key ~msg:tbs s then
                      check prefix_path vrest srest
                    else begin
                      (* Distinguish a wrong-target replay from a
                         generally bad signature for diagnostics. *)
                      let replayed other =
                        let tbs' =
                          to_be_signed ~prefix:ann.prefix ~path_from_origin:prefix_path
                            ~target:other
                        in
                        Sig_scheme.verify ~verification_key ~msg:tbs' s
                      in
                      if t <> receiver && replayed receiver then
                        Error (Wrong_target { signer = v; expected = t })
                      else Error (Bad_signature v)
                    end
              end
          in
          check [] vs ann.sigs
    end
  end

let forge ~prefix ~path ~target = { prefix; path; target; sigs = [] }

let of_wire_parts ~prefix ~path ~target ~sigs = { prefix; path; target; sigs }

let enrolled_hops registry ann =
  List.fold_left
    (fun acc v -> if Rpki.Registry.enrolled registry ~asn:v then acc + 1 else acc)
    0 ann.path
