(** Secure Origin BGP (soBGP, [43]): topology validation.

    Neighboring ASes jointly certify the existence of the link between
    them; a validating AS checks that every consecutive pair on a
    received path has a certified link. Certification happens offline,
    which is why simplex soBGP needs no router upgrade at stubs
    (Section 2.2.1). *)

type link_cert = private {
  a : int;
  b : int;  (** invariant a < b *)
  sig_a : Scrypto.Sig_scheme.signature;
  sig_b : Scrypto.Sig_scheme.signature;
}

type db
(** The shared certificate database. *)

val create_db : unit -> db

val certify_link : Rpki.Registry.t -> db -> int -> int -> (link_cert, string) result
(** Both endpoints must be enrolled; idempotent. *)

val link_certified : Rpki.Registry.t -> db -> int -> int -> bool
(** True iff a cert exists for the (unordered) pair *and* both
    endpoint signatures verify against the registry. *)

val path_valid : Rpki.Registry.t -> db -> int list -> bool
(** Topology validation of an AS path (any direction): every
    consecutive pair certified. Single-hop paths are vacuously
    valid. *)

val cert_count : db -> int
