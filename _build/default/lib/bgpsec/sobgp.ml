module Sig_scheme = Scrypto.Sig_scheme

type link_cert = {
  a : int;
  b : int;
  sig_a : Sig_scheme.signature;
  sig_b : Sig_scheme.signature;
}

type db = (int * int, link_cert) Hashtbl.t

let create_db () : db = Hashtbl.create 256

let key a b = if a < b then (a, b) else (b, a)

let to_be_signed a b = Printf.sprintf "sobgp-link|%d|%d" a b

let certify_link registry db x y =
  let a, b = key x y in
  match Hashtbl.find_opt db (a, b) with
  | Some cert -> Ok cert
  | None -> begin
      match
        (Rpki.Registry.keypair_of registry ~asn:a, Rpki.Registry.keypair_of registry ~asn:b)
      with
      | None, _ -> Error (Printf.sprintf "AS %d not enrolled" a)
      | _, None -> Error (Printf.sprintf "AS %d not enrolled" b)
      | Some ka, Some kb ->
          let tbs = to_be_signed a b in
          let cert =
            { a; b; sig_a = Sig_scheme.sign ka tbs; sig_b = Sig_scheme.sign kb tbs }
          in
          Hashtbl.replace db (a, b) cert;
          Ok cert
    end

let link_certified registry db x y =
  let a, b = key x y in
  match Hashtbl.find_opt db (a, b) with
  | None -> false
  | Some cert -> begin
      match
        (Rpki.Registry.keypair_of registry ~asn:a, Rpki.Registry.keypair_of registry ~asn:b)
      with
      | Some ka, Some kb ->
          let tbs = to_be_signed a b in
          Sig_scheme.verify ~verification_key:ka ~msg:tbs cert.sig_a
          && Sig_scheme.verify ~verification_key:kb ~msg:tbs cert.sig_b
      | _ -> false
    end

let rec path_valid registry db = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> link_certified registry db x y && path_valid registry db rest

let cert_count db = Hashtbl.length db
