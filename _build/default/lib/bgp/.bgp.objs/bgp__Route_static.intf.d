lib/bgp/route_static.mli: Asgraph Bytes Nsutil Policy
