lib/bgp/route_static.ml: Array Asgraph Bytes Char List Nsutil Parallel Policy Printf Queue
