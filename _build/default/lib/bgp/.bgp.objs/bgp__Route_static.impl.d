lib/bgp/route_static.ml: Array Asgraph Bytes Char Nsutil Policy Printf Queue
