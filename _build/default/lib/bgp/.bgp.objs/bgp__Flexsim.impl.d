lib/bgp/flexsim.ml: Array Asgraph Bytes List Policy
