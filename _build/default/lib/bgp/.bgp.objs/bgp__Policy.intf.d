lib/bgp/policy.mli:
