lib/bgp/flexsim.mli: Asgraph Bytes Policy
