lib/bgp/forest.mli: Bytes Policy Route_static
