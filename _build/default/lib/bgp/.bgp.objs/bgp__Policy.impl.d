lib/bgp/policy.ml: Char Hashtbl Nsutil Printf
