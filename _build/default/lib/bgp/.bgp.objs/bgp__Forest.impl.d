lib/bgp/forest.ml: Array Bytes List Nsutil Policy Route_static
