(** Route computation with a configurable position for the security
    criterion.

    Section 2.2.2 notes that an AS "might even modify its ranking on
    outgoing paths so that security is its highest priority" before
    settling on the tie-break-only rule. Moving SecP up the ranking
    breaks Observation C.1 (path class/length become state-dependent),
    so the fast {!Route_static}/{!Forest} pipeline no longer applies;
    this module is a straightforward fixed-point computation used by
    the security-priority ablations. It is O(iterations * E) per
    destination — fine for analysis, not for the engine's inner loop.

    Convergence: with [Tiebreak_only] the policies are the Appendix-A
    ones and convergence is guaranteed (Appendix G). With the higher
    positions the ranking is no longer aligned with the Gao-Rexford
    economics and convergence is *not* guaranteed in general; the
    computation caps its iterations and reports whether it reached a
    fixed point. *)

type secp_position =
  | Tiebreak_only  (** the paper's rule: LP > SP > SecP > TB *)
  | Before_length  (** LP > SecP > SP > TB *)
  | Before_lp  (** SecP > LP > SP > TB: security first *)

val position_to_string : secp_position -> string

type outcome = {
  next : int array;  (** chosen next hop; -1 for the destination / unreachable *)
  secure : bool array;  (** the chosen route is fully secure (including self) *)
  converged : bool;
  iterations : int;
}

val route_to :
  Asgraph.Graph.t ->
  dest:int ->
  secure:Bytes.t ->
  use_secp:Bytes.t ->
  tiebreak:Policy.tiebreak ->
  position:secp_position ->
  outcome
(** Nodes that do not apply SecP ([use_secp] = 0) rank without the
    security criterion at every position. *)
