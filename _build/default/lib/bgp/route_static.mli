(** Per-destination *static* routing information.

    Observation C.1: under the Appendix-A policies, the class and
    length of every node's best route to a destination do not depend
    on the deployment state. This module computes, once per
    destination, each node's route class, path length and *tiebreak
    set* (the equally-good next hops among which SecP and TB choose).
    The per-state routing tree is then derived by {!Forest} in
    O(t * N) per destination. *)

type dest_info = private {
  dest : int;
  cls : Bytes.t;  (** route class per node, {!Policy.class_to_char} encoding *)
  len : Bytes.t;  (** path length per node, valid when reachable; capped at 254 *)
  tie : Nsutil.Csr.t;  (** tiebreak set per node *)
  order : int array;  (** reachable nodes in ascending path length; [order.(0) = dest] *)
  max_len : int;
}

val compute : Asgraph.Graph.t -> int -> dest_info
(** Static info for one destination; O(V + E). *)

val class_of : dest_info -> int -> Policy.route_class
val length_of : dest_info -> int -> int
(** Path length of the node's best route; raises if unreachable. *)

val reachable : dest_info -> int -> bool

type t
(** Whole-graph cache of per-destination info, filled lazily. *)

val create : Asgraph.Graph.t -> t
val graph : t -> Asgraph.Graph.t
val get : t -> int -> dest_info
(** [get t d] computes (once) and returns the info for destination
    [d]. *)

val ensure_all : ?workers:int -> t -> unit
(** Force every destination's info, fanning the (pure, per-destination)
    computations out over [workers] domains. After this call {!get} is
    a read-only lookup and safe to call from any domain. *)

(** Cross-round dirty-destination tracking for deployment-state
    caches. A consumer that caches *per-destination* derived data
    (routing forests, utility contributions) keyed on the deployment
    state can, after a state change, invalidate only the destinations
    whose security-aware routing tree can actually change: destination
    [d]'s tree reads the participation bytes of reachable nodes only
    (every node in [order], [d] itself, and all tiebreak-set members —
    which are themselves reachable), so a flip at a node that is
    unreachable in [d]'s static info cannot alter the tree; and if the
    origin [d] itself does not participate, no route towards it is
    ever fully secure, so flips elsewhere cannot alter the tree
    either. *)
module Dirty : sig
  type statics := t

  type t

  val create : statics -> t
  (** All destinations start dirty (nothing cached yet). *)

  val invalidate : t -> changed:int list -> secure:Bytes.t -> unit
  (** Mark every destination [d] with [d] itself in [changed] (a list
      of nodes whose participation or tie-break byte flipped), or with
      a participating origin ([secure.[d] = '\001'], the post-change
      participation bytes) and some node of [changed] reachable.
      Conservative: may mark a destination whose tree happens not to
      change, never misses one that does. Forces the statics cache. *)

  val reset : t -> unit
  (** Mark every destination clean (call once the consumer has
      recomputed its cache for the current state). *)

  val is_dirty : t -> int -> bool
  val dirty_count : t -> int
end

val mean_tiebreak_size : t -> among:(int -> bool) -> float
(** Mean tiebreak-set size over all (source satisfying [among],
    destination) pairs with a reachable route (Section 6.6). Forces
    every destination. *)

val mean_path_length : t -> from:int -> float
(** Mean best-path length from [from] to all other reachable
    destinations (Table 3). *)
