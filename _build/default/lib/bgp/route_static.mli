(** Per-destination *static* routing information.

    Observation C.1: under the Appendix-A policies, the class and
    length of every node's best route to a destination do not depend
    on the deployment state. This module computes, once per
    destination, each node's route class, path length and *tiebreak
    set* (the equally-good next hops among which SecP and TB choose).
    The per-state routing tree is then derived by {!Forest} in
    O(t * N) per destination. *)

type dest_info = private {
  dest : int;
  cls : Bytes.t;  (** route class per node, {!Policy.class_to_char} encoding *)
  len : Bytes.t;  (** path length per node, valid when reachable; capped at 254 *)
  tie : Nsutil.Csr.t;  (** tiebreak set per node *)
  order : int array;  (** reachable nodes in ascending path length; [order.(0) = dest] *)
  max_len : int;
}

val compute : Asgraph.Graph.t -> int -> dest_info
(** Static info for one destination; O(V + E). *)

val class_of : dest_info -> int -> Policy.route_class
val length_of : dest_info -> int -> int
(** Path length of the node's best route; raises if unreachable. *)

val reachable : dest_info -> int -> bool

type t
(** Whole-graph cache of per-destination info, filled lazily. *)

val create : Asgraph.Graph.t -> t
val graph : t -> Asgraph.Graph.t
val get : t -> int -> dest_info
(** [get t d] computes (once) and returns the info for destination
    [d]. *)

val mean_tiebreak_size : t -> among:(int -> bool) -> float
(** Mean tiebreak-set size over all (source satisfying [among],
    destination) pairs with a reachable route (Section 6.6). Forces
    every destination. *)

val mean_path_length : t -> from:int -> float
(** Mean best-path length from [from] to all other reachable
    destinations (Table 3). *)
