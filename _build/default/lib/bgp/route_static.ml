module Csr = Nsutil.Csr
module Graph = Asgraph.Graph

type dest_info = {
  dest : int;
  cls : Bytes.t;
  len : Bytes.t;
  tie : Csr.t;
  order : int array;
  max_len : int;
}

let inf = max_int
let max_path_len = 254

let c_self = Policy.class_to_char Policy.Self
let c_cust = Policy.class_to_char Policy.Via_customer
let c_peer = Policy.class_to_char Policy.Via_peer
let c_prov = Policy.class_to_char Policy.Via_provider
let c_unreach = Policy.class_to_char Policy.Unreachable

(* Three-stage Gao-Rexford route computation (Appendix A / [15]):
   customer routes climb provider links from d; peer routes add one
   peering hop onto a customer route; provider routes descend customer
   links from any already-routed node, in ascending length order. *)
let compute g d =
  let n = Graph.n g in
  let l1 = Array.make n inf in
  let bl = Array.make n inf in
  let cls = Bytes.make n c_unreach in
  (* Stage 1: customer-route lengths. *)
  l1.(d) <- 0;
  let queue = Queue.create () in
  Queue.add d queue;
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    Graph.iter_providers g x (fun p ->
        if l1.(p) = inf then begin
          l1.(p) <- l1.(x) + 1;
          Queue.add p queue
        end)
  done;
  Bytes.set cls d c_self;
  bl.(d) <- 0;
  for i = 0 to n - 1 do
    if i <> d && l1.(i) < inf then begin
      bl.(i) <- l1.(i);
      Bytes.set cls i c_cust
    end
  done;
  (* Stage 2: peer routes for nodes without a customer route. *)
  for i = 0 to n - 1 do
    if bl.(i) = inf then begin
      let best = ref inf in
      Graph.iter_peers g i (fun p -> if l1.(p) < !best then best := l1.(p));
      if !best < inf then begin
        bl.(i) <- !best + 1;
        Bytes.set cls i c_peer
      end
    end
  done;
  (* Stage 3: provider routes, in ascending final length. *)
  let bq = Nsutil.Bucketq.create ~max_key:(max_path_len + 1) in
  let done_ = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    if bl.(i) < inf then Nsutil.Bucketq.push bq ~key:bl.(i) i
  done;
  let rec drain () =
    match Nsutil.Bucketq.pop bq with
    | None -> ()
    | Some (key, x) ->
        if Bytes.get done_ x = '\000' then begin
          Bytes.set done_ x '\001';
          if bl.(x) = inf then begin
            bl.(x) <- key;
            Bytes.set cls x c_prov
          end;
          let next_key = key + 1 in
          if next_key <= max_path_len then
            Graph.iter_customers g x (fun c ->
                if Bytes.get done_ c = '\000' && bl.(c) = inf then
                  Nsutil.Bucketq.push bq ~key:next_key c)
        end;
        drain ()
  in
  drain ();
  (* Tiebreak sets. *)
  let exports_customer_route j = Bytes.get cls j = c_self || Bytes.get cls j = c_cust in
  let tie_acc = Array.make n [] in
  for i = 0 to n - 1 do
    if i <> d && bl.(i) < inf then begin
      let want = bl.(i) - 1 in
      let cl = Bytes.get cls i in
      if cl = c_cust then
        Graph.iter_customers g i (fun c ->
            if bl.(c) = want && exports_customer_route c then
              tie_acc.(i) <- c :: tie_acc.(i))
      else if cl = c_peer then
        Graph.iter_peers g i (fun p ->
            if bl.(p) = want && exports_customer_route p then
              tie_acc.(i) <- p :: tie_acc.(i))
      else
        Graph.iter_providers g i (fun p ->
            if bl.(p) = want then tie_acc.(i) <- p :: tie_acc.(i))
    end
  done;
  let order =
    Nsutil.Order.by_small_key
      ~key:(fun i -> if bl.(i) = inf then -1 else bl.(i))
      ~max_key:max_path_len n
  in
  (* Trim unreachable nodes (sorted last) off the order. *)
  let reachable_count =
    Array.fold_left (fun acc v -> if v < inf then acc + 1 else acc) 0 bl
  in
  let order = Array.sub order 0 reachable_count in
  let max_len = Array.fold_left (fun acc v -> if v < inf then max acc v else acc) 0 bl in
  let len = Bytes.make n '\000' in
  for i = 0 to n - 1 do
    if bl.(i) < inf then Bytes.set len i (Char.chr bl.(i))
  done;
  { dest = d; cls; len; tie = Csr.of_rev_lists tie_acc; order; max_len }

let class_of info i = Policy.class_of_char (Bytes.get info.cls i)

let reachable info i = Bytes.get info.cls i <> c_unreach

let length_of info i =
  if not (reachable info i) then
    invalid_arg (Printf.sprintf "Route_static.length_of: %d unreachable" i)
  else Char.code (Bytes.get info.len i)

type t = { g : Graph.t; cache : dest_info option array }

let create g = { g; cache = Array.make (Graph.n g) None }
let graph t = t.g

let get t d =
  match t.cache.(d) with
  | Some info -> info
  | None ->
      let info = compute t.g d in
      t.cache.(d) <- Some info;
      info

let ensure_all ?(workers = 1) t =
  let n = Graph.n t.g in
  let missing = ref [] in
  for d = n - 1 downto 0 do
    if t.cache.(d) = None then missing := d :: !missing
  done;
  match !missing with
  | [] -> ()
  | missing ->
      let miss = Array.of_list missing in
      (* [compute] is pure, so filling the cache fans out safely; the
         cache array itself is only written here, one slot per task. *)
      let infos =
        Parallel.Pool.map_array ~workers ~tasks:(Array.length miss) (fun i ->
            compute t.g miss.(i))
      in
      Array.iteri (fun i info -> t.cache.(miss.(i)) <- Some info) infos

module Dirty = struct
  type statics = t

  type t = { statics : statics; flags : Bytes.t }

  let create statics =
    { statics; flags = Bytes.make (Graph.n statics.g) '\001' }

  let is_dirty t d = Bytes.get t.flags d = '\001'

  let invalidate t ~changed ~secure =
    if changed <> [] then begin
      let n = Graph.n t.statics.g in
      let in_changed = Bytes.make n '\000' in
      List.iter (fun c -> Bytes.set in_changed c '\001') changed;
      for d = 0 to n - 1 do
        if Bytes.get t.flags d = '\000' then
          if Bytes.get in_changed d = '\001' then Bytes.set t.flags d '\001'
          else if Bytes.get secure d = '\001' then begin
            (* The origin participates, so routes towards it can be
               secure: any reachable changed byte may flip a route's
               security or a security tie-break. An origin that does
               not participate (and whose own bytes are unchanged) has
               no secure routes before or after — its tree only reads
               static preferences, so it stays clean. *)
            let info = get t.statics d in
            if List.exists (fun c -> reachable info c) changed then
              Bytes.set t.flags d '\001'
          end
      done
    end

  let reset t = Bytes.fill t.flags 0 (Bytes.length t.flags) '\000'

  let dirty_count t =
    let acc = ref 0 in
    Bytes.iter (fun c -> if c = '\001' then incr acc) t.flags;
    !acc
end

let mean_tiebreak_size t ~among =
  let n = Graph.n t.g in
  let total = ref 0 in
  let count = ref 0 in
  for d = 0 to n - 1 do
    let info = get t d in
    Array.iter
      (fun i ->
        if i <> d && among i then begin
          total := !total + Csr.row_length info.tie i;
          incr count
        end)
      info.order
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

let mean_path_length t ~from =
  let n = Graph.n t.g in
  let total = ref 0 in
  let count = ref 0 in
  for d = 0 to n - 1 do
    if d <> from then begin
      let info = get t d in
      if reachable info from then begin
        total := !total + length_of info from;
        incr count
      end
    end
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count
