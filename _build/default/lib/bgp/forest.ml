module Csr = Nsutil.Csr

type scratch = { next : int array; sec_path : Bytes.t; sub : float array; size : int }

let make_scratch n =
  { next = Array.make n (-1); sec_path = Bytes.make n '\000'; sub = Array.make n 0.0; size = n }

let compute (info : Route_static.dest_info) ~tiebreak ~secure ~use_secp ~weight scratch =
  let { next; sec_path; sub; size = n } = scratch in
  ignore n;
  let order = info.order in
  let tie = info.tie in
  let d = info.dest in
  (* Reset only the nodes we will touch (the reachable ones). *)
  Array.iter
    (fun i ->
      next.(i) <- -1;
      Bytes.unsafe_set sec_path i '\000';
      sub.(i) <- weight.(i))
    order;
  Bytes.unsafe_set sec_path d (Bytes.unsafe_get secure d);
  (* Pass 1, ascending path length: choose next hops and propagate
     secure-route availability. A node has a fully secure route iff it
     is itself secure and some tiebreak-set member has one; a node
     applying SecP restricts its choice to such members when any
     exist. *)
  let nreach = Array.length order in
  for k = 1 to nreach - 1 do
    let i = Array.unsafe_get order k in
    let secure_exists = Csr.exists_row tie i (fun j -> Bytes.unsafe_get sec_path j = '\001') in
    if secure_exists && Bytes.unsafe_get secure i = '\001' then
      Bytes.unsafe_set sec_path i '\001';
    let restrict = secure_exists && Bytes.unsafe_get use_secp i = '\001' in
    let best = ref (-1) in
    let best_key = ref max_int in
    Csr.iter_row tie i (fun j ->
        if (not restrict) || Bytes.unsafe_get sec_path j = '\001' then begin
          let key = Policy.tiebreak_key tiebreak i j in
          if !best < 0 || key < !best_key then begin
            best := j;
            best_key := key
          end
        end);
    next.(i) <- !best
  done;
  (* Pass 2, descending path length: accumulate subtree weights. *)
  for k = nreach - 1 downto 1 do
    let i = Array.unsafe_get order k in
    let nh = next.(i) in
    if nh >= 0 then sub.(nh) <- sub.(nh) +. sub.(i)
  done

let path_to_dest (info : Route_static.dest_info) scratch src =
  if not (Route_static.reachable info src) then []
  else begin
    let rec walk v acc =
      if v = info.dest then List.rev (v :: acc)
      else begin
        let nh = scratch.next.(v) in
        if nh < 0 then [] else walk nh (v :: acc)
      end
    in
    walk src []
  end

let transit_weight scratch ~weight i = scratch.sub.(i) -. weight.(i)
