(** The fast routing tree algorithm (Appendix C.2).

    Given one destination's static info and a deployment state, this
    computes every node's chosen next hop (applying the SecP and TB
    steps), whether each node holds a fully secure route, and the
    traffic weight transiting each node — all in O(t * N) with zero
    allocation when reusing a scratch buffer. *)

type scratch = private {
  next : int array;  (** chosen next hop; [-1] for the destination / unreachable *)
  sec_path : Bytes.t;  (** 1 iff the node's best routes include a fully secure one *)
  sub : float array;  (** subtree weight: own weight + all traffic routed through *)
  size : int;
}

val make_scratch : int -> scratch
(** Scratch for graphs of [n] nodes; reusable across calls. *)

val compute :
  Route_static.dest_info ->
  tiebreak:Policy.tiebreak ->
  secure:Bytes.t ->
  use_secp:Bytes.t ->
  weight:float array ->
  scratch ->
  unit
(** Fill [scratch] for this destination and state. [secure.(i) = 1]
    iff AS [i] participates in S*BGP (full or simplex): it signs, so
    paths through it can be fully secure. [use_secp.(i) = 1] iff [i]
    applies the SecP tie-break (secure ISPs/CPs always; secure stubs
    only when the stubs-break-ties assumption is on). A path is secure
    iff every AS on it is secure, including both endpoints. *)

val path_to_dest : Route_static.dest_info -> scratch -> int -> int list
(** The chosen AS path [src; ...; dest], empty if unreachable. *)

val transit_weight : scratch -> weight:float array -> int -> float
(** Traffic from other ASes that the node forwards towards this
    destination: [sub - own weight]. *)
