module Graph = Asgraph.Graph

type secp_position = Tiebreak_only | Before_length | Before_lp

let position_to_string = function
  | Tiebreak_only -> "tiebreak-only"
  | Before_length -> "before-length"
  | Before_lp -> "security-first"

type outcome = {
  next : int array;
  secure : bool array;
  converged : bool;
  iterations : int;
}

type route = { next_hop : int; path : int list; lp : int; sec : bool }

let route_to g ~dest ~secure ~use_secp ~tiebreak ~position =
  let n = Graph.n g in
  let rib : route option array = Array.make n None in
  let sec_of i = Bytes.get secure i = '\001' in
  let exports v ~v_is_provider_of_u =
    v = dest
    || v_is_provider_of_u
    || match rib.(v) with Some r -> r.lp = 0 | None -> false
  in
  (* The learned route's security excludes the receiver itself. *)
  let key u (r : route) =
    let learned_secure =
      match r.path with _ :: rest -> List.for_all sec_of rest | [] -> true
    in
    let s =
      if Bytes.get use_secp u = '\001' && learned_secure then 0
      else if Bytes.get use_secp u = '\001' then 1
      else 0
    in
    let len = List.length r.path in
    let tb = Policy.tiebreak_key tiebreak u r.next_hop in
    match position with
    | Tiebreak_only -> (r.lp, len, s, tb)
    | Before_length -> (r.lp, s, len, tb)
    | Before_lp -> (s, r.lp, len, tb)
  in
  let candidate u v lp =
    if v = dest then
      Some { next_hop = v; path = [ u; dest ]; lp; sec = sec_of u && sec_of dest }
    else begin
      match rib.(v) with
      | None -> None
      | Some r ->
          if List.mem u r.path then None
          else Some { next_hop = v; path = u :: r.path; lp; sec = sec_of u && r.sec }
    end
  in
  let changed = ref true in
  let iterations = ref 0 in
  let cap = (2 * n) + 8 in
  while !changed && !iterations < cap do
    incr iterations;
    changed := false;
    for u = 0 to n - 1 do
      if u <> dest then begin
        let best = ref None in
        let consider v lp provider =
          if exports v ~v_is_provider_of_u:provider then begin
            match candidate u v lp with
            | Some c ->
                let beats =
                  match !best with None -> true | Some b -> key u c < key u b
                in
                if beats then best := Some c
            | None -> ()
          end
        in
        Graph.iter_customers g u (fun v -> consider v 0 false);
        Graph.iter_peers g u (fun v -> consider v 1 false);
        Graph.iter_providers g u (fun v -> consider v 2 true);
        if !best <> rib.(u) then begin
          rib.(u) <- !best;
          changed := true
        end
      end
    done
  done;
  {
    next =
      Array.mapi
        (fun u r ->
          if u = dest then -1 else match r with Some r -> r.next_hop | None -> -1)
        rib;
    secure =
      Array.mapi
        (fun u r ->
          if u = dest then sec_of dest
          else match r with Some r -> r.sec | None -> false)
        rib;
    converged = not !changed;
    iterations = !iterations;
  }
