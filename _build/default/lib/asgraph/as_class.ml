type t = Stub | Isp | Cp

let to_string = function Stub -> "stub" | Isp -> "isp" | Cp -> "cp"

let of_string = function
  | "stub" -> Some Stub
  | "isp" -> Some Isp
  | "cp" -> Some Cp
  | _ -> None

let equal a b =
  match (a, b) with
  | Stub, Stub | Isp, Isp | Cp, Cp -> true
  | (Stub | Isp | Cp), _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
