(** Structural sanity checks on AS graphs.

    GR1 of the Gao-Rexford conditions requires the customer-provider
    relation to be acyclic (nobody is their own transitive provider);
    our routing substrate and the gadget constructions of Appendix K
    both rely on it. *)

type report = {
  gr1_acyclic : bool;  (** no customer-provider cycle *)
  connected : bool;  (** underlying undirected graph is connected *)
  tier1_count : int;  (** provider-free ISPs *)
  orphan_count : int;  (** degree-0 nodes *)
}

val run : Graph.t -> report

val gr1_acyclic : Graph.t -> bool
val connected : Graph.t -> bool

val find_cp_cycle : Graph.t -> int list option
(** A witness customer-provider cycle (as a node list), if any. *)
