lib/asgraph/graph.mli: As_class Nsutil
