lib/asgraph/as_class.mli: Format
