lib/asgraph/graph.ml: Array As_class Hashtbl List Nsutil Printf
