lib/asgraph/metrics.ml: Array As_class Format Graph List
