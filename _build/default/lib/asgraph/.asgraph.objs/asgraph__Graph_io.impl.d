lib/asgraph/graph_io.ml: Array As_class Buffer Fun Graph Hashtbl List Printf String
