lib/asgraph/graph_io.ml: Array As_class Buffer Graph Hashtbl List Printf String
