lib/asgraph/graph_io.mli: Graph Hashtbl
