lib/asgraph/as_class.ml: Format
