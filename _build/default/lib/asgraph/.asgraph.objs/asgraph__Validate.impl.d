lib/asgraph/validate.ml: Array Bytes Graph Nsutil Queue
