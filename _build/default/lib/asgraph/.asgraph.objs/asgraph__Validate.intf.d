lib/asgraph/validate.mli: Graph
