lib/asgraph/metrics.mli: Format Graph
