(** AS classes used throughout the paper's model (Section 3.1). *)

type t =
  | Stub  (** No customers and not a content provider; 85% of ASes. *)
  | Isp  (** Earns revenue by transiting customer traffic. *)
  | Cp  (** Content provider; originates a large traffic share. *)

val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
