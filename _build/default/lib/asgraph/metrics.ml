type summary = {
  nodes : int;
  stubs : int;
  isps : int;
  cps : int;
  cp_edges : int;
  peer_edges : int;
  max_degree : int;
  mean_degree : float;
}

let degree_array g = Array.init (Graph.n g) (fun i -> Graph.degree g i)

let summary g =
  let n = Graph.n g in
  let deg = degree_array g in
  let max_degree = Array.fold_left max 0 deg in
  let total_degree = Array.fold_left ( + ) 0 deg in
  {
    nodes = n;
    stubs = Graph.count_class g As_class.Stub;
    isps = Graph.count_class g As_class.Isp;
    cps = Graph.count_class g As_class.Cp;
    cp_edges = Graph.cp_edge_count g;
    peer_edges = Graph.peer_edge_count g;
    max_degree;
    mean_degree = (if n = 0 then 0.0 else float_of_int total_degree /. float_of_int n);
  }

let top_by_degree g ?among k =
  let among = match among with Some f -> f | None -> Graph.is_isp g in
  let candidates = ref [] in
  for i = Graph.n g - 1 downto 0 do
    if among i then candidates := (Graph.degree g i, i) :: !candidates
  done;
  let sorted =
    List.sort (fun (da, ia) (db, ib) -> if da <> db then compare db da else compare ia ib)
      !candidates
  in
  List.filteri (fun idx _ -> idx < k) sorted |> List.map snd

let stub_fraction g =
  let n = Graph.n g in
  if n = 0 then 0.0
  else float_of_int (Graph.count_class g As_class.Stub) /. float_of_int n

let single_homed_stub_customers g isp =
  let count = ref 0 in
  Graph.iter_customers g isp (fun c ->
      if Graph.is_stub g c && Graph.provider_degree g c = 1 then incr count);
  !count

let multi_homed_stubs g =
  let acc = ref [] in
  for i = Graph.n g - 1 downto 0 do
    if Graph.is_stub g i && Graph.provider_degree g i >= 2 then acc := i :: !acc
  done;
  !acc

let pp_summary fmt s =
  Format.fprintf fmt
    "nodes=%d stubs=%d isps=%d cps=%d cp-edges=%d peer-edges=%d maxdeg=%d meandeg=%.2f"
    s.nodes s.stubs s.isps s.cps s.cp_edges s.peer_edges s.max_degree s.mean_degree
