exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# AS relationship graph\n";
  Buffer.add_string buf (Printf.sprintf "!n %d\n" (Graph.n g));
  List.iter
    (fun cp -> Buffer.add_string buf (Printf.sprintf "!cp %d\n" cp))
    (Graph.nodes_of_class g As_class.Cp);
  List.iter
    (fun ((a, b), rel) ->
      match rel with
      | Graph.Customer -> Buffer.add_string buf (Printf.sprintf "%d|%d|-1\n" a b)
      | Graph.Peer -> Buffer.add_string buf (Printf.sprintf "%d|%d|0\n" a b)
      | Graph.Provider -> assert false)
    (Graph.edges g);
  Buffer.contents buf

let of_string s =
  let n = ref (-1) in
  let cps = ref [] in
  let cp_edges = ref [] in
  let peer_edges = ref [] in
  let parse_line idx line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else if String.length line > 3 && String.sub line 0 3 = "!n " then begin
      match int_of_string_opt (String.sub line 3 (String.length line - 3)) with
      | Some v when v >= 0 -> n := v
      | _ -> fail idx "bad !n directive: %s" line
    end
    else if String.length line > 4 && String.sub line 0 4 = "!cp " then begin
      match int_of_string_opt (String.sub line 4 (String.length line - 4)) with
      | Some v -> cps := v :: !cps
      | None -> fail idx "bad !cp directive: %s" line
    end
    else begin
      match String.split_on_char '|' line with
      | [ a; b; r ] -> begin
          match (int_of_string_opt a, int_of_string_opt b, String.trim r) with
          | Some a, Some b, "-1" -> cp_edges := (a, b) :: !cp_edges
          | Some a, Some b, "0" -> peer_edges := (a, b) :: !peer_edges
          | _ -> fail idx "bad edge record: %s" line
        end
      | _ -> fail idx "unrecognized line: %s" line
    end
  in
  List.iteri (fun i l -> parse_line (i + 1) l) (String.split_on_char '\n' s);
  if !n < 0 then fail 0 "missing !n directive";
  try Graph.build ~n:!n ~cp_edges:!cp_edges ~peer_edges:!peer_edges ~cps:!cps
  with Graph.Malformed m -> fail 0 "malformed graph: %s" m

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string g))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string (read_file path)

type caida_import = {
  graph : Graph.t;
  asn_of_node : int array;
  node_of_asn : (int, int) Hashtbl.t;
  skipped : int;
}

let of_caida ?(cps = []) s =
  let node_of_asn = Hashtbl.create 4096 in
  let rev = ref [] in
  let count = ref 0 in
  let intern asn =
    match Hashtbl.find_opt node_of_asn asn with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        Hashtbl.add node_of_asn asn id;
        rev := asn :: !rev;
        id
  in
  let seen = Hashtbl.create 4096 in
  let key a b = if a < b then (a, b) else (b, a) in
  let cp_edges = ref [] in
  let peer_edges = ref [] in
  let skipped = ref 0 in
  let record a b tag add =
    if a = b then incr skipped
    else begin
      let k = key a b in
      match Hashtbl.find_opt seen k with
      | Some prev when prev = tag -> () (* duplicate *)
      | Some _ -> incr skipped (* conflicting annotation *)
      | None ->
          Hashtbl.add seen k tag;
          add ()
    end
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char '|' line with
        | a :: b :: rel :: _ -> begin
            match (int_of_string_opt a, int_of_string_opt b, String.trim rel) with
            | Some a, Some b, "-1" ->
                let a = intern a and b = intern b in
                record a b (if a < b then `Cp_lo else `Cp_hi) (fun () ->
                    cp_edges := (a, b) :: !cp_edges)
            | Some a, Some b, "0" ->
                let a = intern a and b = intern b in
                record a b `Peer (fun () -> peer_edges := (a, b) :: !peer_edges)
            | _ -> incr skipped
          end
        | _ -> incr skipped
      end)
    (String.split_on_char '\n' s);
  let asn_of_node = Array.of_list (List.rev !rev) in
  (* CPs must have no customers in this model; drop the marker (not
     the node) otherwise, like the paper removes the CPs'
     acquisition customers (Appendix D). *)
  let has_customer = Hashtbl.create 1024 in
  List.iter (fun (p, _) -> Hashtbl.replace has_customer p ()) !cp_edges;
  let cp_nodes =
    List.filter_map
      (fun asn ->
        match Hashtbl.find_opt node_of_asn asn with
        | Some id when not (Hashtbl.mem has_customer id) -> Some id
        | Some _ | None -> None)
      cps
  in
  let graph =
    Graph.build ~n:!count ~cp_edges:!cp_edges ~peer_edges:!peer_edges ~cps:cp_nodes
  in
  { graph; asn_of_node; node_of_asn; skipped = !skipped }

let load_caida ?cps path = of_caida ?cps (read_file path)
