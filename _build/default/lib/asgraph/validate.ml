type report = {
  gr1_acyclic : bool;
  connected : bool;
  tier1_count : int;
  orphan_count : int;
}

(* Iterative three-color DFS over provider->customer edges. *)
let find_cp_cycle g =
  let n = Graph.n g in
  let color = Bytes.make n '\000' in
  (* '\000' white, '\001' on stack, '\002' done *)
  let parent = Array.make n (-1) in
  let cycle = ref None in
  let rec dfs v =
    Bytes.set color v '\001';
    Graph.iter_customers g v (fun c ->
        if !cycle = None then begin
          match Bytes.get color c with
          | '\000' ->
              parent.(c) <- v;
              dfs c
          | '\001' ->
              (* Back edge v -> c closes a cycle c .. v. *)
              let rec collect u acc = if u = c then c :: acc else collect parent.(u) (u :: acc) in
              cycle := Some (collect v [])
          | _ -> ()
        end);
    Bytes.set color v '\002'
  in
  let v = ref 0 in
  while !cycle = None && !v < n do
    if Bytes.get color !v = '\000' then dfs !v;
    incr v
  done;
  !cycle

let gr1_acyclic g = find_cp_cycle g = None

let connected g =
  let n = Graph.n g in
  if n = 0 then true
  else begin
    let seen = Nsutil.Bitset.create n in
    let queue = Queue.create () in
    Nsutil.Bitset.set seen 0;
    Queue.add 0 queue;
    let count = ref 1 in
    let visit u =
      if not (Nsutil.Bitset.mem seen u) then begin
        Nsutil.Bitset.set seen u;
        incr count;
        Queue.add u queue
      end
    in
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      Graph.iter_customers g v visit;
      Graph.iter_providers g v visit;
      Graph.iter_peers g v visit
    done;
    !count = n
  end

let run g =
  let n = Graph.n g in
  let tier1 = ref 0 in
  let orphans = ref 0 in
  for i = 0 to n - 1 do
    if Graph.provider_degree g i = 0 && Graph.is_isp g i then incr tier1;
    if Graph.degree g i = 0 then incr orphans
  done;
  {
    gr1_acyclic = gr1_acyclic g;
    connected = connected g;
    tier1_count = !tier1;
    orphan_count = !orphans;
  }
