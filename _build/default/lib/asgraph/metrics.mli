(** Degree and composition metrics over AS graphs. *)

type summary = {
  nodes : int;
  stubs : int;
  isps : int;
  cps : int;
  cp_edges : int;
  peer_edges : int;
  max_degree : int;
  mean_degree : float;
}

val summary : Graph.t -> summary

val top_by_degree : Graph.t -> ?among:(int -> bool) -> int -> int list
(** [top_by_degree g ~among k] returns the [k] highest-degree nodes
    satisfying [among] (default: ISPs only, matching the paper's
    "top-5 Tier 1s in terms of degree"), ties by lower id. *)

val degree_array : Graph.t -> int array

val stub_fraction : Graph.t -> float

val single_homed_stub_customers : Graph.t -> int -> int
(** Number of the given ISP's stub customers with exactly one
    provider. *)

val multi_homed_stubs : Graph.t -> int list
(** All stubs with at least two providers — the locus of competition
    (Section 5.1). *)

val pp_summary : Format.formatter -> summary -> unit
