(** The deployed RPKI: a trust anchor, per-AS resource certificates,
    ROAs, and the trusted key distribution used by the simulated
    signature scheme ({!Scrypto.Sig_scheme}). *)

type t

val create : seed:int -> t
(** Fresh registry with a self-signed root holding 0.0.0.0/0. *)

val root_cert : t -> Cert.t

val enroll : t -> asn:int -> prefixes:Netaddr.Prefix.t list -> (Cert.t, string) result
(** Issue a resource certificate (and keypair) to an AS and publish a
    ROA for each prefix. Fails if the AS is already enrolled. *)

val enrolled : t -> asn:int -> bool
val cert_of : t -> asn:int -> Cert.t option
val keypair_of : t -> asn:int -> Scrypto.Sig_scheme.keypair option
(** The AS's signing key. In the real RPKI only the AS holds this;
    here the registry doubles as the trusted key-distribution channel
    (see {!Scrypto.Sig_scheme} for the threat-model caveat). *)

val lookup_key : t -> string -> Scrypto.Sig_scheme.keypair option
(** Resolve a key id to a verification key. *)

val roas : t -> Roa.t list

val origin_validity : t -> prefix:Netaddr.Prefix.t -> origin_asn:int -> Roa.validity

val verify_as_chain : t -> asn:int -> (unit, string) result
(** Validate the AS's certificate against the trust anchor. *)
