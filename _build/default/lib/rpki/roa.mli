(** Route Origin Authorizations and RFC 6811 origin validation. *)

type t = private {
  prefix : Netaddr.Prefix.t;
  origin_asn : int;
  max_length : int;
  signature : Scrypto.Sig_scheme.signature;  (** by the prefix holder's key *)
}

val make :
  holder_keypair:Scrypto.Sig_scheme.keypair ->
  prefix:Netaddr.Prefix.t ->
  origin_asn:int ->
  ?max_length:int ->
  unit ->
  t
(** [max_length] defaults to the prefix length. *)

val verify : verification_key:Scrypto.Sig_scheme.keypair -> t -> bool

type validity = Valid | Invalid_origin | Invalid_length | Unknown

val validate : roas:t list -> prefix:Netaddr.Prefix.t -> origin_asn:int -> validity
(** RFC 6811: [Unknown] when no ROA covers the prefix; [Valid] when
    some covering ROA matches origin and length; otherwise the most
    specific failure among covering ROAs. *)

val validity_to_string : validity -> string
