lib/rpki/roa.mli: Netaddr Scrypto
