lib/rpki/roa.ml: List Netaddr Option Printf Scrypto
