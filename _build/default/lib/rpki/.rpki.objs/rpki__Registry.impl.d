lib/rpki/registry.ml: Cert Hashtbl List Netaddr Nsutil Printf Roa Scrypto
