lib/rpki/cert.mli: Netaddr Scrypto
