lib/rpki/cert.ml: Buffer List Netaddr Printf Scrypto String
