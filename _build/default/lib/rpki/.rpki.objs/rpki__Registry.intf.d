lib/rpki/registry.mli: Cert Netaddr Roa Scrypto
