module Prefix = Netaddr.Prefix
module Sig_scheme = Scrypto.Sig_scheme

type t = {
  rng : Nsutil.Prng.t;
  root_keypair : Sig_scheme.keypair;
  root : Cert.t;
  certs : (int, Cert.t) Hashtbl.t;
  keypairs : (int, Sig_scheme.keypair) Hashtbl.t;
  keys_by_id : (string, Sig_scheme.keypair) Hashtbl.t;
  mutable roa_list : Roa.t list;
}

let create ~seed =
  let rng = Nsutil.Prng.create ~seed in
  let root_keypair = Sig_scheme.generate rng in
  let all = Prefix.of_string_exn "0.0.0.0/0" in
  let root = Cert.self_signed_root ~keypair:root_keypair ~resources:[ all ] in
  let keys_by_id = Hashtbl.create 64 in
  Hashtbl.add keys_by_id root_keypair.key_id root_keypair;
  {
    rng;
    root_keypair;
    root;
    certs = Hashtbl.create 64;
    keypairs = Hashtbl.create 64;
    keys_by_id;
    roa_list = [];
  }

let root_cert t = t.root
let enrolled t ~asn = Hashtbl.mem t.certs asn
let cert_of t ~asn = Hashtbl.find_opt t.certs asn
let keypair_of t ~asn = Hashtbl.find_opt t.keypairs asn
let lookup_key t key_id = Hashtbl.find_opt t.keys_by_id key_id
let roas t = t.roa_list

let enroll t ~asn ~prefixes =
  if enrolled t ~asn then Error (Printf.sprintf "AS %d already enrolled" asn)
  else begin
    let keypair = Sig_scheme.generate t.rng in
    match
      Cert.issue ~issuer_keypair:t.root_keypair ~issuer:t.root ~subject_asn:asn
        ~subject_keypair:keypair ~resources:prefixes
    with
    | Error _ as e -> e
    | Ok cert ->
        Hashtbl.add t.certs asn cert;
        Hashtbl.add t.keypairs asn keypair;
        Hashtbl.add t.keys_by_id keypair.key_id keypair;
        List.iter
          (fun prefix ->
            t.roa_list <-
              Roa.make ~holder_keypair:keypair ~prefix ~origin_asn:asn () :: t.roa_list)
          prefixes;
        Ok cert
  end

let origin_validity t ~prefix ~origin_asn =
  Roa.validate ~roas:t.roa_list ~prefix ~origin_asn

let verify_as_chain t ~asn =
  match cert_of t ~asn with
  | None -> Error (Printf.sprintf "AS %d not enrolled" asn)
  | Some cert -> Cert.verify_chain ~root:t.root ~lookup_keypair:(lookup_key t) [ t.root; cert ]
