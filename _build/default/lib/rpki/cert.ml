module Prefix = Netaddr.Prefix
module Sig_scheme = Scrypto.Sig_scheme

type t = {
  subject_asn : int;
  key_id : string;
  resources : Prefix.t list;
  issuer_key_id : string;
  signature : Sig_scheme.signature;
}

let to_be_signed ~subject_asn ~key_id ~resources ~issuer_key_id =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "cert|%d|" subject_asn);
  Buffer.add_string buf (Scrypto.Sha256.hex key_id);
  Buffer.add_char buf '|';
  List.iter
    (fun p ->
      Buffer.add_string buf (Prefix.to_string p);
      Buffer.add_char buf ';')
    resources;
  Buffer.add_char buf '|';
  Buffer.add_string buf (Scrypto.Sha256.hex issuer_key_id);
  Buffer.contents buf

let self_signed_root ~(keypair : Sig_scheme.keypair) ~resources =
  let key_id = keypair.key_id in
  let tbs = to_be_signed ~subject_asn:(-1) ~key_id ~resources ~issuer_key_id:key_id in
  {
    subject_asn = -1;
    key_id;
    resources;
    issuer_key_id = key_id;
    signature = Sig_scheme.sign keypair tbs;
  }

let covers cert prefix = List.exists (fun r -> Prefix.subsumes r prefix) cert.resources

let issue ~(issuer_keypair : Sig_scheme.keypair) ~issuer ~subject_asn
    ~(subject_keypair : Sig_scheme.keypair) ~resources =
  if not (String.equal issuer_keypair.key_id issuer.key_id) then
    Error "issuer keypair does not match issuer certificate"
  else begin
    match List.find_opt (fun r -> not (covers issuer r)) resources with
    | Some r -> Error (Printf.sprintf "resource %s not held by issuer" (Prefix.to_string r))
    | None ->
        let key_id = subject_keypair.key_id in
        let tbs =
          to_be_signed ~subject_asn ~key_id ~resources ~issuer_key_id:issuer.key_id
        in
        Ok
          {
            subject_asn;
            key_id;
            resources;
            issuer_key_id = issuer.key_id;
            signature = Sig_scheme.sign issuer_keypair tbs;
          }
  end

let verify_one ~lookup_keypair ~issuer_cert cert =
  match lookup_keypair cert.issuer_key_id with
  | None -> Error "unknown issuer key"
  | Some verification_key ->
      if not (String.equal cert.issuer_key_id issuer_cert.key_id) then
        Error "chain link mismatch"
      else begin
        let tbs =
          to_be_signed ~subject_asn:cert.subject_asn ~key_id:cert.key_id
            ~resources:cert.resources ~issuer_key_id:cert.issuer_key_id
        in
        if not (Sig_scheme.verify ~verification_key ~msg:tbs cert.signature) then
          Error "bad certificate signature"
        else if List.exists (fun r -> not (covers issuer_cert r)) cert.resources then
          Error "resources exceed issuer's"
        else Ok ()
      end

let verify_chain ~root ~lookup_keypair certs =
  match certs with
  | [] -> Error "empty chain"
  | first :: rest ->
      if first != root && first <> root then Error "chain does not start at trust anchor"
      else begin
        let rec walk issuer_cert = function
          | [] -> Ok ()
          | cert :: tail -> begin
              match verify_one ~lookup_keypair ~issuer_cert cert with
              | Error _ as e -> e
              | Ok () -> walk cert tail
            end
        in
        walk first rest
      end
