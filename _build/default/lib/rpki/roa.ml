module Prefix = Netaddr.Prefix
module Sig_scheme = Scrypto.Sig_scheme

type t = {
  prefix : Prefix.t;
  origin_asn : int;
  max_length : int;
  signature : Sig_scheme.signature;
}

let to_be_signed ~prefix ~origin_asn ~max_length =
  Printf.sprintf "roa|%s|%d|%d" (Prefix.to_string prefix) origin_asn max_length

let make ~holder_keypair ~prefix ~origin_asn ?max_length () =
  let max_length = Option.value ~default:prefix.Prefix.length max_length in
  let tbs = to_be_signed ~prefix ~origin_asn ~max_length in
  { prefix; origin_asn; max_length; signature = Sig_scheme.sign holder_keypair tbs }

let verify ~verification_key roa =
  let tbs =
    to_be_signed ~prefix:roa.prefix ~origin_asn:roa.origin_asn ~max_length:roa.max_length
  in
  Sig_scheme.verify ~verification_key ~msg:tbs roa.signature

type validity = Valid | Invalid_origin | Invalid_length | Unknown

let validate ~roas ~prefix ~origin_asn =
  let covering = List.filter (fun r -> Prefix.subsumes r.prefix prefix) roas in
  if covering = [] then Unknown
  else begin
    let matches r = r.origin_asn = origin_asn && prefix.Prefix.length <= r.max_length in
    if List.exists matches covering then Valid
    else if
      List.exists
        (fun r -> r.origin_asn = origin_asn && prefix.Prefix.length > r.max_length)
        covering
    then Invalid_length
    else Invalid_origin
  end

let validity_to_string = function
  | Valid -> "valid"
  | Invalid_origin -> "invalid-origin"
  | Invalid_length -> "invalid-length"
  | Unknown -> "unknown"
