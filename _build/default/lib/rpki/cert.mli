(** Resource certificates: the RPKI's mapping from ASes to their IP
    resources and public keys (Section 1), with RFC 3779-style
    resource containment along issuance chains. *)

type t = private {
  subject_asn : int;  (** -1 for the root authority *)
  key_id : string;  (** subject key identifier *)
  resources : Netaddr.Prefix.t list;
  issuer_key_id : string;  (** equals [key_id] for the self-signed root *)
  signature : Scrypto.Sig_scheme.signature;
}

val self_signed_root :
  keypair:Scrypto.Sig_scheme.keypair -> resources:Netaddr.Prefix.t list -> t
(** The trust anchor (e.g. "0.0.0.0/0" held by the RIR). *)

val issue :
  issuer_keypair:Scrypto.Sig_scheme.keypair ->
  issuer:t ->
  subject_asn:int ->
  subject_keypair:Scrypto.Sig_scheme.keypair ->
  resources:Netaddr.Prefix.t list ->
  (t, string) result
(** Fails when [issuer_keypair] does not match the issuer cert or a
    requested resource is not covered by the issuer's resources. *)

val to_be_signed : subject_asn:int -> key_id:string -> resources:Netaddr.Prefix.t list -> issuer_key_id:string -> string
(** Canonical byte string covered by the certificate signature. *)

val verify_chain :
  root:t -> lookup_keypair:(string -> Scrypto.Sig_scheme.keypair option) -> t list -> (unit, string) result
(** [verify_chain ~root ~lookup_keypair certs] checks a chain ordered
    root-first: each link signed by its predecessor's key, resources
    nested, and the first element equal to the (trusted) [root].
    [lookup_keypair] resolves key ids to verification keys — the
    trusted key distribution of our simulated scheme. *)

val covers : t -> Netaddr.Prefix.t -> bool
