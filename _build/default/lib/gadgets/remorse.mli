(** Buyer's remorse (Figure 13): an ISP with an incentive to turn
    S*BGP *off* under the incoming-utility model.

    The India-Telecom scenario: content provider [cp] (Akamai) reaches
    [isp]'s (AS 4755) stub customers either through [isp]'s provider
    [upstream] (NTT 2914) — a fully secure route while [isp] is on —
    or through [isp]'s customer [downstream] (AS 9498), which the
    plain tie break prefers. While [isp] runs S*BGP, the CP's traffic
    arrives over a provider edge and earns [isp] nothing; switching
    off kills the secure route, the tie break reasserts itself, and
    the same traffic arrives over a customer edge. *)

type t = {
  graph : Asgraph.Graph.t;
  cp : int;  (** Akamai: early adopter *)
  upstream : int;  (** NTT: early adopter, [isp]'s provider *)
  isp : int;  (** AS 4755: starts secure but unpinned *)
  downstream : int;  (** AS 9498: [isp]'s customer, never deploys *)
  stubs : int list;  (** [isp]'s stub customers (the 24 destinations) *)
  weight : float array;
  early : int list;
  frozen : int list;
}

val build : ?stub_count:int -> ?cp_weight:float -> unit -> t
(** [downstream] gets a lower id than [upstream] so the tie break
    favors the customer route, as in the paper's simulation. *)

val config : Core.Config.t
(** Incoming utility, θ = 0 for disabling, stubs do not break ties
    (as assumed in Section 7.1), lowest-id TB. *)

val initial_state : t -> Core.State.t
(** [cp], [upstream] pinned secure; [isp] secure but free to flip. *)
