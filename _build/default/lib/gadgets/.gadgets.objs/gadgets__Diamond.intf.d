lib/gadgets/diamond.mli: Asgraph Core
