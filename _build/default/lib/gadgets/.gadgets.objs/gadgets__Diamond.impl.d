lib/gadgets/diamond.ml: Array Asgraph Bgp Core
