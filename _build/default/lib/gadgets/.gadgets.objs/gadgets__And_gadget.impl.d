lib/gadgets/and_gadget.ml: Array Asgraph Bgp Core
