lib/gadgets/setcover.ml: Array Asgraph Bgp Core List
