lib/gadgets/chicken.mli: Asgraph Core
