lib/gadgets/selector.ml: Array Asgraph Bgp Core List
