lib/gadgets/remorse.ml: Array Asgraph Bgp Core List
