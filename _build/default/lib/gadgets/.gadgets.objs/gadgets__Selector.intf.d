lib/gadgets/selector.mli: Asgraph Bgp Core
