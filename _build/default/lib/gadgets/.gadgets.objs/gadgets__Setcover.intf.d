lib/gadgets/setcover.mli: Asgraph Core
