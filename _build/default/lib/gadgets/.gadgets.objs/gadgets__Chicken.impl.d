lib/gadgets/chicken.ml: Array Asgraph Bgp Core
