lib/gadgets/and_gadget.mli: Asgraph Core
