lib/gadgets/remorse.mli: Asgraph Core
