module Graph = Asgraph.Graph

type t = {
  graph : Graph.t;
  src : int;
  isp_a : int;
  isp_b : int;
  stub : int;
  weight : float array;
  early : int list;
}

let build ?(src_weight = 100.0) () =
  let isp_a = 0 and isp_b = 1 and src = 2 and stub = 3 in
  let n = 4 in
  let graph =
    Graph.build ~n
      ~cp_edges:[ (src, isp_a); (src, isp_b); (isp_a, stub); (isp_b, stub) ]
      ~peer_edges:[] ~cps:[]
  in
  let weight = Array.make n 1.0 in
  weight.(src) <- src_weight;
  { graph; src; isp_a; isp_b; stub; weight; early = [ src ] }

let config =
  {
    Core.Config.default with
    tiebreak = Bgp.Policy.Lowest_id;
    theta = 0.05;
    stub_tiebreak = true;
  }
