(** The DIAMOND scenario of Figure 2: two ISPs competing for a
    traffic source's route to a multi-homed stub.

    A secure high-weight source [src] (think Sprint) reaches [stub]
    via either [isp_a] or [isp_b] — equally good routes, with the
    plain tie break favoring [isp_a]. Round 1: [isp_b] deploys (it
    projects stealing the traffic, since deploying also secures the
    stub by simplex and [src]'s SecP step then prefers the only
    fully-secure route). Round 2: [isp_a] deploys to win the traffic
    back (with both routes secure, the original tie break applies
    again). This is the competition dynamic of Section 5.1/5.5. *)

type t = {
  graph : Asgraph.Graph.t;
  src : int;  (** high-weight secure source (early adopter, pinned) *)
  isp_a : int;  (** lower id: initial carrier, deploys second *)
  isp_b : int;  (** competitor, deploys first *)
  stub : int;  (** the contested multi-homed stub *)
  weight : float array;
  early : int list;
}

val build : ?src_weight:float -> unit -> t

val config : Core.Config.t
(** Outgoing utility, θ = 5%, stubs break ties, lowest-id TB. *)
