(** The CHICKEN gadget (Appendix K.5, Figure 21 / Table 5).

    Two ISPs play an asymmetric game of chicken: the stable outcomes
    are exactly (ON, OFF) and (OFF, ON); from (ON, ON) both want to
    switch off and from (OFF, OFF) both want to switch on. Under the
    paper's simultaneous best-response dynamics this yields a
    *deployment oscillation* (Section 7.2): (OFF, OFF) -> (ON, ON) ->
    (OFF, OFF) -> ... — the incoming-utility pathology behind
    Theorem 7.1.

    The construction realizes the best-response structure of the
    paper's Table 5 (non-designated flows add state-dependent offsets,
    so exact entries differ, but the game shape is verified by tests):
    both players strictly prefer to flip in (ON, ON) and in
    (OFF, OFF), and strictly prefer to stay in (ON, OFF) and
    (OFF, ON). *)

type t = {
  graph : Asgraph.Graph.t;
  player10 : int;
  player20 : int;
  weight : float array;
  early : int list;  (** the fixed-ON nodes *)
  frozen : int list;  (** the fixed-OFF nodes *)
}

val build : ?m:float -> ?eps:float -> unit -> t

val config : Core.Config.t
(** Incoming utility, θ = 0, stubs break ties, lowest-id TB. *)

val payoff : t -> on10:bool -> on20:bool -> float * float
(** Directly computed incoming utilities of the two players in the
    given joint state (constant offsets included) — used to verify the
    bimatrix shape. *)
