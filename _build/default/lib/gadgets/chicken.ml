module Graph = Asgraph.Graph

type t = {
  graph : Graph.t;
  player10 : int;
  player20 : int;
  weight : float array;
  early : int list;
  frozen : int list;
}

(* Node ids. Tie-break constraints (Policy.Lowest_id):
   - Cross1's set {f1, p10}: f1 < p10 (insecure default via f1);
   - Cross2's set {f2, f3}: f2 < f3;
   - Local1's set {p10, k1000}: p10 < k1000;
   - Local2's set {p20, k2000}: p20 < k2000. *)
let d1 = 0
let f1 = 1
let f2 = 2
let f3 = 3
let f4 = 4
let f5 = 5
let f6 = 6
let p10 = 7
let p20 = 8
let d2 = 9
let cover1 = 10 (* pinned-ON provider keeping Cross1 simplex-secure *)
let cover2 = 11
let local1 = 12
let local2 = 13
let k1000 = 14
let k2000 = 15
let cross1 = 16
let cross2 = 17
let count = 18

let build ?(m = 100.0) ?(eps = 1.0) () =
  let cp_edges =
    [
      (* The two destinations, multihomed so they stay simplex-secure
         regardless of the players' actions. *)
      (p10, d1); (k1000, d1);
      (p20, d2); (k2000, d2);
      (* Player hierarchy: 20 is a provider of 10; 6 a provider of 20. *)
      (p20, p10); (f6, p20);
      (* Cross1's insecure alternative: 1 under 4 under 20. *)
      (p20, f4); (f4, f1);
      (* Cross2's insecure alternative: 2 under 5 under 10. *)
      (p10, f5); (f5, f2);
      (* Customer trees (modeled as weighted stubs). *)
      (p10, local1); (k1000, local1);
      (p20, local2); (k2000, local2);
      (p10, cross1); (f1, cross1); (cover1, cross1);
      (f3, cross2); (f2, cross2); (cover2, cross2);
    ]
  in
  let peer_edges = [ (p10, f6); (p20, f3) ] in
  let graph = Graph.build ~n:count ~cp_edges ~peer_edges ~cps:[] in
  let weight = Array.make count 0.0 in
  weight.(local1) <- eps;
  weight.(local2) <- eps;
  weight.(cross1) <- m;
  weight.(cross2) <- 2.0 *. m;
  {
    graph;
    player10 = p10;
    player20 = p20;
    weight;
    early = [ f3; f6; k1000; k2000; cover1; cover2 ];
    frozen = [ f1; f2; f4; f5 ];
  }

let config =
  {
    Core.Config.incoming with
    tiebreak = Bgp.Policy.Lowest_id;
    theta = 0.0;
    theta_off = 0.0;
    stub_tiebreak = true;
  }

let payoff t ~on10 ~on20 =
  let state = Core.State.create t.graph ~early:t.early ~frozen:t.frozen in
  if on10 then Core.State.set_full state t.player10 true;
  if on20 then Core.State.set_full state t.player20 true;
  let statics = Bgp.Route_static.create t.graph in
  let u = Core.Utility.all config statics state ~weight:t.weight in
  (u.(t.player10), u.(t.player20))
