(** The k-SELECTOR gadget (Appendix K.6): a clique of CHICKEN games.

    [k] player ISPs are pairwise connected through CHICKEN gadgets
    (lower-indexed player in the "10" role). Lemma K.5: the stable
    states are exactly those with a single player ON; in any state
    with two or more players ON every ON player wants OFF, and in the
    all-OFF state every player wants ON. This is the building block of
    the PSPACE-hardness construction (the transition gadgets of K.7+
    then steer the selector between its k stable states).

    Every CHICKEN instance gets fresh infrastructure; cross-instance
    traffic is short-circuited with direct peer edges (the paper's
    non-designated-traffic trick, Appendix K.3 footnote), and the
    instance-specific tie-break preferences are encoded with a
    {!Bgp.Policy.Ranked} table. *)

type t = {
  graph : Asgraph.Graph.t;
  players : int array;  (** ids 0..k-1 *)
  weight : float array;
  early : int list;
  frozen : int list;
  tiebreak : Bgp.Policy.tiebreak;
}

val build : ?m:float -> ?eps:float -> k:int -> unit -> t
(** Requires [k >= 2]. *)

val config : t -> Core.Config.t
(** Incoming utility, θ = 0, stubs break ties, the gadget's rank
    table. *)

val run_from : t -> on:int list -> Core.Engine.result
(** Run the dynamics with the given players initially (unpinned) ON,
    everyone else OFF. *)
