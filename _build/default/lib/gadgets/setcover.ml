module Graph = Asgraph.Graph

type instance = { universe : int; subsets : int array list }

type t = {
  graph : Graph.t;
  d : int;
  s1 : int array;
  s2 : int array;
  element : int array;
  weight : float array;
  frozen : int list;
}

(* Id layout: per-element alternative ISPs first (they must win the
   plain tie break against every s_i2), then the subset gadgets, then
   the element stubs and the destination. *)
let build inst =
  let u = inst.universe in
  let m = List.length inst.subsets in
  let alt_a e = e in
  let alt_b e = u + e in
  let s1 = Array.init m (fun i -> (2 * u) + i) in
  let s2 = Array.init m (fun i -> (2 * u) + m + i) in
  let element = Array.init u (fun e -> (2 * u) + (2 * m) + e) in
  let d = (2 * u) + (2 * m) + u in
  let n = d + 1 in
  let cp_edges = ref [] in
  let add prov cust = cp_edges := (prov, cust) :: !cp_edges in
  for e = 0 to u - 1 do
    add (alt_a e) element.(e);
    add (alt_b e) (alt_a e);
    add (alt_b e) d
  done;
  List.iteri
    (fun i subset ->
      add s1.(i) d;
      add s2.(i) s1.(i);
      Array.iter (fun e -> add s2.(i) element.(e)) subset)
    inst.subsets;
  let graph = Graph.build ~n ~cp_edges:!cp_edges ~peer_edges:[] ~cps:[] in
  let weight = Array.make n 1.0 in
  let frozen =
    List.concat (List.init u (fun e -> [ alt_a e; alt_b e ]))
  in
  { graph; d; s1; s2; element; weight; frozen }

let config =
  {
    Core.Config.default with
    tiebreak = Bgp.Policy.Lowest_id;
    theta = 0.0;
    stub_tiebreak = true;
  }

let secure_after t ~early =
  let statics = Bgp.Route_static.create t.graph in
  let state = Core.State.create t.graph ~early ~frozen:t.frozen in
  let result = Core.Engine.run config statics ~weight:t.weight ~state in
  Core.State.secure_count result.final

let covered inst ~chosen =
  let seen = Array.make inst.universe false in
  List.iteri
    (fun i subset ->
      if List.mem i chosen then Array.iter (fun e -> seen.(e) <- true) subset)
    inst.subsets;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen
