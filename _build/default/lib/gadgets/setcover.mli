(** The SET-COVER reduction of Theorem 6.1 (Appendix E, Figure 16).

    Given a SET-COVER instance (universe elements, subsets), builds
    the AS graph of the reduction: a stub destination [d] that is a
    customer of every [s_i1]; each [s_i1] a customer of its [s_i2];
    each [s_i2] a provider of the element-stubs of its subset; and per
    element a disjoint, tie-break-preferred alternative route to [d]
    through two frozen ISPs.

    Choosing the [s_i1] of a cover as early adopters makes every
    corresponding [s_i2] deploy in round 1 (it projects attracting its
    element-stubs' traffic onto the newly secure route through
    [s_i1]), which upgrades exactly the covered element stubs to
    simplex. Secure-AS count at termination therefore tracks coverage,
    so the optimal early-adopter set solves SET-COVER — the crux of
    the NP-hardness proof, verified in tests against brute force. *)

type instance = { universe : int; subsets : int array list }
(** Elements are [0 .. universe-1]; each subset lists its elements. *)

type t = {
  graph : Asgraph.Graph.t;
  d : int;  (** the shared stub destination *)
  s1 : int array;  (** per subset: the early-adopter candidate *)
  s2 : int array;  (** per subset: its provider *)
  element : int array;  (** per universe element: its stub node *)
  weight : float array;
  frozen : int list;  (** the alternative-route ISPs *)
}

val build : instance -> t

val config : Core.Config.t
(** Outgoing utility, θ = 0, stubs break ties, lowest-id TB. *)

val secure_after : t -> early:int list -> int
(** Run the deployment process with the given early adopters and
    return the number of secure ASes at termination. *)

val covered : instance -> chosen:int list -> int
(** Elements covered by choosing the given subset indices (ground
    truth for comparison). *)
