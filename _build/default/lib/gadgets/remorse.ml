module Graph = Asgraph.Graph

type t = {
  graph : Graph.t;
  cp : int;
  upstream : int;
  isp : int;
  downstream : int;
  stubs : int list;
  weight : float array;
  early : int list;
  frozen : int list;
}

let build ?(stub_count = 24) ?(cp_weight = 821.0) () =
  (* The customer route (via [downstream]) must win the plain tie
     break, hence the id order. *)
  let downstream = 0 and upstream = 1 and isp = 2 and cp = 3 in
  let stubs = List.init stub_count (fun i -> 4 + i) in
  let n = 4 + stub_count in
  let cp_edges =
    ((upstream, isp) :: (isp, downstream) :: (upstream, cp) :: (downstream, cp)
    :: List.map (fun s -> (isp, s)) stubs)
  in
  let graph = Graph.build ~n ~cp_edges ~peer_edges:[] ~cps:[ cp ] in
  let weight = Array.make n 1.0 in
  weight.(cp) <- cp_weight;
  {
    graph;
    cp;
    upstream;
    isp;
    downstream;
    stubs;
    weight;
    early = [ cp; upstream ];
    frozen = [ downstream ];
  }

let config =
  {
    Core.Config.incoming with
    tiebreak = Bgp.Policy.Lowest_id;
    theta = 0.0;
    theta_off = 0.0;
    stub_tiebreak = false;
  }

let initial_state t =
  let state = Core.State.create t.graph ~early:t.early ~frozen:t.frozen in
  Core.State.set_full state t.isp true;
  state
