module Graph = Asgraph.Graph
module Policy = Bgp.Policy

type t = {
  graph : Graph.t;
  players : int array;
  weight : float array;
  early : int list;
  frozen : int list;
  tiebreak : Policy.tiebreak;
}

(* Mutable construction state: nodes are allocated on demand, edges
   and role lists accumulate, and the rank table encodes the
   per-instance tie-break preferences. *)
type builder = {
  mutable count : int;
  mutable cp_edges : (int * int) list;
  mutable peer_edges : (int * int) list;
  mutable weights : (int * float) list;
  mutable early : int list;
  mutable frozen : int list;
  ranking : Policy.ranking;
}

let fresh b =
  let id = b.count in
  b.count <- id + 1;
  id

let cp b ~provider ~customer = b.cp_edges <- (provider, customer) :: b.cp_edges
let peer b a c = b.peer_edges <- (a, c) :: b.peer_edges
let prefer b ~node ~over:(lo, hi) =
  (* [node] breaks the tie between next hops [lo] (preferred) and
     [hi]. *)
  Policy.set_rank b.ranking ~node ~next_hop:lo 0;
  Policy.set_rank b.ranking ~node ~next_hop:hi 1

(* One CHICKEN instance between players [a] (the "10" role) and [b']
   (the "20" role, provider of [a]); see Chicken for the standalone,
   commented version of the same construction. Returns the instance's
   own nodes, with the traffic sources listed first. *)
let attach_chicken b ~m ~eps a b' =
  let f1 = fresh b and f2 = fresh b and f3 = fresh b and f4 = fresh b in
  let f4b = fresh b and f5 = fresh b and f6 = fresh b and f6g = fresh b in
  let d1 = fresh b and d2 = fresh b in
  let cover1 = fresh b and cover2 = fresh b in
  let local1 = fresh b and local2 = fresh b in
  let k1 = fresh b and k2 = fresh b in
  let cross1 = fresh b and cross2 = fresh b in
  cp b ~provider:b' ~customer:a;
  (* The "10 - 6 - 20" peering arm, lengthened by one hop (f6g above
     f6): with symmetric two-hop arms, a shared player's route to the
     arm's own nodes would tie between its providers and flip with the
     deployment state; the extra hop keeps all such distances
     distinct. The opposing f1-f4 arm grows by one hop (f4b) so the
     designated Cross1 tie stays length-balanced. *)
  cp b ~provider:f6 ~customer:b';
  cp b ~provider:f6g ~customer:f6;
  cp b ~provider:b' ~customer:f4b;
  cp b ~provider:f4b ~customer:f4;
  cp b ~provider:f4 ~customer:f1;
  cp b ~provider:a ~customer:f5;
  cp b ~provider:f5 ~customer:f2;
  cp b ~provider:a ~customer:d1;
  cp b ~provider:k1 ~customer:d1;
  cp b ~provider:b' ~customer:d2;
  cp b ~provider:k2 ~customer:d2;
  cp b ~provider:a ~customer:local1;
  cp b ~provider:k1 ~customer:local1;
  cp b ~provider:b' ~customer:local2;
  cp b ~provider:k2 ~customer:local2;
  cp b ~provider:a ~customer:cross1;
  cp b ~provider:f1 ~customer:cross1;
  cp b ~provider:cover1 ~customer:cross1;
  cp b ~provider:f3 ~customer:cross2;
  cp b ~provider:f2 ~customer:cross2;
  cp b ~provider:cover2 ~customer:cross2;
  peer b a f6g;
  peer b b' f3;
  (* Tie-break preferences (cf. Chicken's id-ordering constraints). *)
  prefer b ~node:cross1 ~over:(f1, a);
  prefer b ~node:local1 ~over:(a, k1);
  prefer b ~node:cross2 ~over:(f2, f3);
  prefer b ~node:local2 ~over:(b', k2);
  b.weights <- (local1, eps) :: (local2, eps) :: (cross1, m) :: (cross2, 2.0 *. m) :: b.weights;
  b.early <- f3 :: f6 :: f6g :: k1 :: k2 :: cover1 :: cover2 :: b.early;
  b.frozen <- f1 :: f2 :: f4 :: f4b :: f5 :: b.frozen;
  let sources = [ local1; local2; cross1; cross2 ] in
  (* Nodes of this instance that other instances' trees may safely
     peer with. Players and f6 (a provider of a player) are excluded:
     they hold customer chains into other instances, and a direct peer
     edge to them would open an LP-preferred route that hijacks those
     instances' designated flows. *)
  let peerable = sources @ [ f1; f2; f3; f4; f4b; f5; d1; d2; cover1; cover2; k1; k2 ] in
  (sources, peerable)

let build ?(m = 100.0) ?(eps = 1.0) ~k () =
  if k < 2 then invalid_arg "Selector.build: k >= 2";
  let b =
    {
      count = k;
      cp_edges = [];
      peer_edges = [];
      weights = [];
      early = [];
      frozen = [];
      ranking = Policy.ranking_create ();
    }
  in
  let players = Array.init k (fun i -> i) in
  let instances = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let sources, peerable = attach_chicken b ~m ~eps i j in
      instances := (sources, peerable) :: !instances
    done
  done;
  (* The non-designated-traffic trick: every source tree of one
     instance peers directly with every peerable node of every other
     instance, so cross-instance flows are constant one-hop peer
     routes. *)
  let instances = List.rev !instances in
  List.iteri
    (fun pi (sources, _) ->
      List.iteri
        (fun qi (_, theirs) ->
          if pi <> qi then
            List.iter (fun s -> List.iter (fun v -> peer b s v) theirs) sources)
        instances)
    instances;
  let weight = Array.make b.count 0.0 in
  List.iter (fun (node, w) -> weight.(node) <- weight.(node) +. w) b.weights;
  let graph =
    Graph.build ~n:b.count ~cp_edges:b.cp_edges ~peer_edges:b.peer_edges ~cps:[]
  in
  {
    graph;
    players;
    weight;
    early = List.sort_uniq compare b.early;
    frozen = List.sort_uniq compare b.frozen;
    tiebreak = Policy.Ranked b.ranking;
  }

let config t =
  {
    Core.Config.incoming with
    tiebreak = t.tiebreak;
    theta = 0.0;
    theta_off = 0.0;
    stub_tiebreak = true;
  }

let run_from t ~on =
  let statics = Bgp.Route_static.create t.graph in
  let state = Core.State.create t.graph ~early:t.early ~frozen:t.frozen in
  List.iter (fun p -> ignore (Core.State.enable state p)) on;
  Core.Engine.run (config t) statics ~weight:t.weight ~state
