module Graph = Asgraph.Graph

type t = {
  graph : Graph.t;
  output : int;
  inputs : int array;
  weight : float array;
  early : int list;
  frozen : int list;
}

(* Ids. Tie-break constraints: input_i < q_i (secure input route wins
   the final tie break) and x < y (insecure hold route is the
   default). *)
let inputs = [| 0; 1; 2 |]
let x = 3
let q = [| 4; 5; 6 |]
let y = 7
let b = [| 8; 9; 10 |]
let output = 11
let a_src = [| 12; 13; 14 |]
let hold = 15
let da = [| 16; 17; 18 |]
let dh = 19
let count = 20

let build ?(m = 100.0) ?(h = 250.0) () =
  let cp_edges = ref [] in
  let add prov cust = cp_edges := (prov, cust) :: !cp_edges in
  Array.iter (fun i -> add output i) inputs;
  add output x;
  add output dh;
  Array.iter (fun d -> add output d) da;
  add y output;
  add y hold;
  add x hold;
  Array.iteri
    (fun i input ->
      add input a_src.(i);
      add q.(i) a_src.(i);
      add b.(i) da.(i))
    inputs;
  let peer_edges = ref [] in
  Array.iteri (fun i _ -> peer_edges := (q.(i), b.(i)) :: !peer_edges) inputs;
  (* The paper's non-designated-traffic trick (Appendix K.3): peer the
     hold source directly with every destination whose route would
     otherwise flip with the players' state (a peer route is
     LP-preferred and constant). Peering with [output] itself would
     also shortcut the designated hold flow, so the flows to the
     destinations [dh] and [output] both stay in the gadget — the
     hold weight is halved to compensate. *)
  Array.iter (fun d -> peer_edges := (hold, d) :: !peer_edges) da;
  Array.iter (fun i -> peer_edges := (hold, i) :: !peer_edges) inputs;
  Array.iter (fun s -> peer_edges := (hold, s) :: !peer_edges) a_src;
  let graph = Graph.build ~n:count ~cp_edges:!cp_edges ~peer_edges:!peer_edges ~cps:[] in
  let weight = Array.make count 0.0 in
  Array.iter (fun s -> weight.(s) <- m) a_src;
  weight.(hold) <- h /. 2.0;
  {
    graph;
    output;
    inputs;
    weight;
    early = [ y ] @ Array.to_list q @ Array.to_list b;
    frozen = [ x ];
  }

let config =
  {
    Core.Config.incoming with
    tiebreak = Bgp.Policy.Lowest_id;
    theta = 0.0;
    theta_off = 0.0;
    stub_tiebreak = true;
  }

let run t ~inputs_on =
  if Array.length inputs_on <> Array.length t.inputs then
    invalid_arg "And_gadget.run: inputs_on length";
  let early = ref t.early in
  let frozen = ref t.frozen in
  Array.iteri
    (fun i on ->
      if on then early := t.inputs.(i) :: !early
      else frozen := t.inputs.(i) :: !frozen)
    inputs_on;
  let state = Core.State.create t.graph ~early:!early ~frozen:!frozen in
  let statics = Bgp.Route_static.create t.graph in
  let result = Core.Engine.run config statics ~weight:t.weight ~state in
  Core.State.secure result.final t.output
