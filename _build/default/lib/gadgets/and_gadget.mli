(** An AND gadget in the spirit of Appendix K.4: an output ISP that
    deploys S*BGP iff all of its input ISPs have.

    (The paper's Figure 20 is not fully recoverable from the text, so
    this is an independently designed construction with the same
    contract, verified by tests.)

    Mechanism, all under incoming utility:
    - {e Hold traffic}: a secure source reaches a stub of the output
      over two equal routes — through a frozen customer of the output
      (tie-break preferred) or through a pinned-secure provider of the
      output. While the output is OFF the customer route carries
      weight [h] into it; turning ON makes the provider route fully
      secure and the traffic leaves the customer edge.
    - {e Input traffic} (one per input): a secure source reaches a
      doubly-homed stub either through (input, output) — fully secure
      iff both are ON — or through an always-secure pinned detour that
      loses the final tie break. The output earns [m] over a customer
      edge iff input AND output are ON.

    With [2m < h < 3m] (three inputs), the output's best response is
    ON exactly when all three inputs are ON. *)

type t = {
  graph : Asgraph.Graph.t;
  output : int;
  inputs : int array;  (** three input ISPs (pinned by the caller) *)
  weight : float array;
  early : int list;  (** pinned-ON infrastructure *)
  frozen : int list;  (** pinned-OFF infrastructure *)
}

val build : ?m:float -> ?h:float -> unit -> t
(** Defaults: [m = 100], [h = 250]. *)

val config : Core.Config.t

val run : t -> inputs_on:bool array -> bool
(** Pin the inputs to the given actions, run the deployment process
    from all-OFF, and report whether the output ends up secure. *)
