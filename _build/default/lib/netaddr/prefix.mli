(** IPv4 prefixes (CIDR blocks), the objects named by RPKI ROAs and
    announced in S*BGP messages. *)

type t = private { network : Ipv4.t; length : int }
(** Invariant: [0 <= length <= 32] and the host bits of [network] are
    zero. *)

val make : Ipv4.t -> int -> t
(** Host bits are masked off. Raises [Invalid_argument] on a length
    outside [\[0, 32\]]. *)

val of_string : string -> t option
(** ["a.b.c.d/len"]. Rejects prefixes with set host bits. *)

val of_string_exn : string -> t
val to_string : t -> string

val contains : t -> Ipv4.t -> bool
val subsumes : t -> t -> bool
(** [subsumes outer inner] iff every address of [inner] is in
    [outer]. *)

val overlap : t -> t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val split : t -> (t * t) option
(** The two half-length subprefixes, or [None] for a /32. *)
