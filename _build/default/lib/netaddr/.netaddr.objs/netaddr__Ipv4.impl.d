lib/netaddr/ipv4.ml: Char Int Option Printf String
