lib/netaddr/ipv4.mli:
