lib/netaddr/prefix.ml: Int Ipv4 Printf String
