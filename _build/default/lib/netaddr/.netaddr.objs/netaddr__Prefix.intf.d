lib/netaddr/prefix.mli: Ipv4
