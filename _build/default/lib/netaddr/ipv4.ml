type t = int

let of_int v = v land 0xFFFFFFFF
let to_int v = v

let of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255
  then invalid_arg "Ipv4.of_octets";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  (* Strict dotted-quad: exactly four runs of 1-3 digits separated by
     dots, each <= 255. *)
  let len = String.length s in
  let rec octet pos acc digits =
    if pos >= len || s.[pos] < '0' || s.[pos] > '9' then
      if digits = 0 || acc > 255 then None else Some (acc, pos)
    else if digits >= 3 then None
    else octet (pos + 1) ((acc * 10) + Char.code s.[pos] - Char.code '0') (digits + 1)
  in
  let ( let* ) = Option.bind in
  let* a, p1 = octet 0 0 0 in
  let* () = if p1 < len && s.[p1] = '.' then Some () else None in
  let* b, p2 = octet (p1 + 1) 0 0 in
  let* () = if p2 < len && s.[p2] = '.' then Some () else None in
  let* c, p3 = octet (p2 + 1) 0 0 in
  let* () = if p3 < len && s.[p3] = '.' then Some () else None in
  let* d, p4 = octet (p3 + 1) 0 0 in
  if p4 = len then Some (of_octets a b c d) else None

let of_string_exn s =
  match of_string s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let to_string v =
  Printf.sprintf "%d.%d.%d.%d" ((v lsr 24) land 0xff) ((v lsr 16) land 0xff)
    ((v lsr 8) land 0xff) (v land 0xff)

let compare = Int.compare
let equal = Int.equal
