(** IPv4 addresses as 32-bit values. *)

type t = private int
(** Guaranteed in [\[0, 2^32)]. *)

val of_int : int -> t
(** Truncates to 32 bits. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** Each octet must be in [\[0, 255\]]. *)

val of_string : string -> t option
(** Dotted-quad parsing, strict: four decimal octets, no extra
    characters, no leading [+]. *)

val of_string_exn : string -> t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
