type t = { network : Ipv4.t; length : int }

let mask_of_length length =
  if length = 0 then 0 else 0xFFFFFFFF lxor ((1 lsl (32 - length)) - 1)

let make addr length =
  if length < 0 || length > 32 then invalid_arg "Prefix.make";
  { network = Ipv4.of_int (Ipv4.to_int addr land mask_of_length length); length }

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> begin
      let addr_part = String.sub s 0 i in
      let len_part = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string addr_part, int_of_string_opt len_part) with
      | Some addr, Some length when length >= 0 && length <= 32 ->
          if Ipv4.to_int addr land lnot (mask_of_length length) <> 0 then None
          else Some { network = addr; length }
      | _ -> None
    end

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.length

let contains p addr =
  Ipv4.to_int addr land mask_of_length p.length = Ipv4.to_int p.network

let subsumes outer inner =
  outer.length <= inner.length && contains outer inner.network

let overlap a b = subsumes a b || subsumes b a

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.length b.length
  | c -> c

let equal a b = compare a b = 0

let split p =
  if p.length >= 32 then None
  else begin
    let length = p.length + 1 in
    let lo = { network = p.network; length } in
    let hi_addr = Ipv4.of_int (Ipv4.to_int p.network lor (1 lsl (32 - length))) in
    Some (lo, { network = hi_addr; length })
  end
