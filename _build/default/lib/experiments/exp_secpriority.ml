(* Section 2.2.2's road not taken: "an AS might even modify its
   ranking on outgoing paths so that security is its highest
   priority. Fortunately, we need not go to such lengths." — but how
   much security does each rank position actually buy? Compare the
   hijacker's reach under tie-break-only (the paper's rule), SecP
   before path length, and security-first, on the same deployment
   states. *)

module Table = Nsutil.Table

module Secpriority = struct
  let id = "secpriority"
  let title =
    "Section 2.2.2 ablation: hijacker's reach when the security criterion ranks \
     tie-break-only vs before-length vs first"

  let samples = 80

  let run (s : Scenario.t) =
    let cfg = Core.Config.default in
    let t =
      Table.create
        ~header:[ "deployment state"; "SecP position"; "deceived fraction" ]
    in
    let states =
      [
        ("nobody secure", Core.State.create (Scenario.graph s) ~early:[]);
        ("early adopters only",
         Core.State.create (Scenario.graph s) ~early:(Scenario.case_study_adopters s));
        ("case-study final", (Scenario.run s cfg).final);
      ]
    in
    List.iter
      (fun (name, state) ->
        List.iter
          (fun position ->
            let f =
              Core.Resilience.mean_deceived_fraction_ranked s.statics state
                ~stub_tiebreak:cfg.stub_tiebreak ~tiebreak:cfg.tiebreak ~position
                ~samples ~seed:23
            in
            Table.add_row t
              [ name; Bgp.Flexsim.position_to_string position; Table.cell_pct f ])
          [ Bgp.Flexsim.Tiebreak_only; Bgp.Flexsim.Before_length; Bgp.Flexsim.Before_lp ])
      states;
    t
end
