(* Section 8.4 extension: does the deployment story survive realistic
   pricing? Map the final case-study state's per-customer volumes to
   revenue under linear / tiered / concave billing and compare ISP
   rankings — if the rankings agree, the paper's linear-utility
   simplification is benign. *)

module Table = Nsutil.Table
module Graph = Asgraph.Graph
module Pricing = Traffic.Pricing

module Pricing_exp = struct
  let id = "pricing"
  let title =
    "Section 8.4: ISP revenue under linear vs tiered vs concave pricing (final \
     case-study state)"

  let schemes =
    [ Pricing.Linear; Pricing.Tiered { step = 25.0 }; Pricing.Concave { exponent = 0.7 } ]

  let run (s : Scenario.t) =
    let g = Scenario.graph s in
    let cfg = { Core.Config.default with model = Core.Config.Incoming } in
    let result = Scenario.run s cfg in
    let weight = Scenario.weights s cfg in
    let volumes = Core.Utility.customer_volumes cfg s.statics result.final ~weight in
    let isps =
      List.filter
        (fun i -> volumes.(i) <> [])
        (Graph.nodes_of_class g Asgraph.As_class.Isp)
    in
    let revenue_under scheme =
      Array.of_list
        (List.map (fun i -> Pricing.revenue scheme (List.map snd volumes.(i))) isps)
    in
    let linear = revenue_under Pricing.Linear in
    let t =
      Table.create
        ~header:[ "pricing scheme"; "total revenue"; "rank agreement vs linear" ]
    in
    List.iter
      (fun scheme ->
        let r = revenue_under scheme in
        Table.add_row t
          [
            Pricing.scheme_to_string scheme;
            Table.cell_f (Array.fold_left ( +. ) 0.0 r);
            Printf.sprintf "%.3f" (Pricing.rank_agreement linear r);
          ])
      schemes;
    (* The top transit earners, under each scheme. *)
    let top k scores =
      let order = List.mapi (fun idx isp -> (scores.(idx), isp)) isps in
      List.sort (fun a b -> compare (fst b) (fst a)) order
      |> List.filteri (fun i _ -> i < k)
      |> List.map (fun (_, isp) -> string_of_int isp)
      |> String.concat ","
    in
    List.iter
      (fun scheme ->
        Table.add_row t
          [
            "top-5 ISPs under " ^ Pricing.scheme_to_string scheme;
            top 5 (revenue_under scheme);
            "";
          ])
      schemes;
    t
end
