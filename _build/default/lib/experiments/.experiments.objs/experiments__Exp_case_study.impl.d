lib/experiments/exp_case_study.ml: Array Asgraph Core Hashtbl List Nsutil Option Printf Scenario
