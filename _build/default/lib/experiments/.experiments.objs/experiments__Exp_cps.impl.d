lib/experiments/exp_cps.ml: Adopters Core List Nsutil Scenario
