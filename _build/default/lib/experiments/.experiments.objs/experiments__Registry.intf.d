lib/experiments/registry.mli: Nsutil Scenario
