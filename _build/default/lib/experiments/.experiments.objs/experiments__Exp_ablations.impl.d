lib/experiments/exp_ablations.ml: Core List Nsutil Scenario
