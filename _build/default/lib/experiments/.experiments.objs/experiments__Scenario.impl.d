lib/experiments/scenario.ml: Array Asgraph Bgp Core Lazy List Nsutil Parallel Printexc Printf Topology Traffic
