lib/experiments/scenario.ml: Array Asgraph Bgp Core Lazy Parallel Sys Topology Traffic
