lib/experiments/exp_hardness.ml: Adopters Array Bgp Gadgets List Nsutil Scenario String
