lib/experiments/exp_resilience.ml: Core List Nsutil Scenario
