lib/experiments/exp_evolution.ml: Asgraph Bgp Core List Nsutil Printf Scenario Topology Traffic
