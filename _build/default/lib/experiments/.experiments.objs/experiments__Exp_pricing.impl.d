lib/experiments/exp_pricing.ml: Array Asgraph Core List Nsutil Printf Scenario String Traffic
