lib/experiments/exp_attack.ml: Bgpsec Nsutil Printf Scenario
