lib/experiments/exp_secpriority.ml: Bgp Core List Nsutil Scenario
