lib/experiments/exp_incoming.ml: Array Asgraph Bgp Core Gadgets List Nsutil Printf Scenario String
