lib/experiments/scenario.mli: Asgraph Bgp Core Lazy Topology
