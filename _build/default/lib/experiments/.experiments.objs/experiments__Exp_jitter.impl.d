lib/experiments/exp_jitter.ml: Core List Nsutil Scenario
