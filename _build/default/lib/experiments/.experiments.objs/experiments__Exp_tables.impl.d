lib/experiments/exp_tables.ml: Asgraph Bgp Core Lazy List Nsutil Printf Scenario
