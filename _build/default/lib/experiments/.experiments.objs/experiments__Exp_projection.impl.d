lib/experiments/exp_projection.ml: Adopters Array Core List Nsutil Printf Scenario
