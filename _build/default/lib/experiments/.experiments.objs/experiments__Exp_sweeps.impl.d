lib/experiments/exp_sweeps.ml: Adopters Asgraph Bgp Core List Nsutil Printf Scenario
