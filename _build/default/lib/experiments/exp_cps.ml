(* Figure 12: content providers vs Tier 1s as early adopters, across
   traffic shares x and on the augmented graph (Section 6.8). *)

module Table = Nsutil.Table

module Fig12 = struct
  let id = "fig12"
  let title =
    "Figure 12: CPs vs top-5 Tier 1s as early adopters (traffic share x, base vs \
     augmented graph)"

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:
          [ "graph"; "early adopters"; "x"; "theta"; "secure ASes"; "secure ISPs" ]
    in
    let sets augmented =
      let g = if augmented then Scenario.graph_aug s else Scenario.graph s in
      [
        ("5cps", Adopters.Strategy.select g Adopters.Strategy.Content_providers);
        ("top5", Adopters.Strategy.select g (Adopters.Strategy.Top_degree 5));
      ]
    in
    List.iter
      (fun augmented ->
        List.iter
          (fun (name, early) ->
            List.iter
              (fun x ->
                List.iter
                  (fun theta ->
                    let cfg =
                      {
                        Core.Config.default with
                        theta;
                        theta_off = theta;
                        cp_fraction = x;
                      }
                    in
                    let r = Scenario.run ~augmented ~early s cfg in
                    Table.add_row t
                      [
                        (if augmented then "augmented" else "base");
                        name;
                        Table.cell_pct x;
                        Table.cell_pct theta;
                        Table.cell_pct (Core.Engine.secure_fraction r `As);
                        Table.cell_pct (Core.Engine.secure_fraction r `Isp);
                      ])
                  [ 0.05; 0.3 ])
              [ 0.10; 0.20; 0.33; 0.50 ])
          (sets augmented))
      [ false; true ];
    t
end
