(* The security dividend of partial deployment (insight 5 and the
   Section 2.2.1 baseline statistic): how many ASes a random hijacker
   deceives, round by round as the market drives deployment. *)

module Table = Nsutil.Table

module Resilience = struct
  let id = "resilience"
  let title =
    "Partial-deployment resilience: mean fraction of ASes deceived by a random prefix \
     hijacker, per deployment round"

  let samples = 120

  let run (s : Scenario.t) =
    let g = Scenario.graph s in
    let cfg = Core.Config.default in
    let t =
      Table.create
        ~header:[ "round"; "secure ASes"; "deceived (tie-break security)" ]
    in
    let measure state =
      Core.Resilience.mean_deceived_fraction s.statics state ~stub_tiebreak:cfg.stub_tiebreak
        ~tiebreak:cfg.tiebreak ~samples ~seed:17
    in
    (* Round 0: the insecure status quo (the paper's "an arbitrary
       misbehaving AS impacts about half the Internet"). *)
    let state = Core.State.create g ~early:[] in
    Table.add_row t
      [ "status quo"; "0"; Table.cell_pct (measure state) ];
    (* Replay the case-study deployment and measure after each round. *)
    let early = Scenario.case_study_adopters s in
    let result = Scenario.run s cfg in
    let state = Core.State.create g ~early in
    Table.add_row t
      [
        "0 (early adopters)";
        string_of_int (Core.State.secure_count state);
        Table.cell_pct (measure state);
      ];
    List.iter
      (fun (r : Core.Engine.round_record) ->
        List.iter (fun i -> ignore (Core.State.enable state i)) r.turned_on;
        List.iter (fun i -> Core.State.disable state i) r.turned_off;
        if r.turned_on <> [] || r.turned_off <> [] then
          Table.add_row t
            [
              string_of_int r.round;
              string_of_int (Core.State.secure_count state);
              Table.cell_pct (measure state);
            ])
      result.rounds;
    t
end
