(* Figure 14: projection accuracy — myopic projected utility vs the
   utility actually observed in the next round (Section 8.1). *)

module Table = Nsutil.Table

module Fig14 = struct
  let id = "fig14"
  let title = "Figure 14: projected / realized utility of deploying ISPs (theta = 0)"

  let ratios (r : Core.Engine.result) =
    (* For each ISP that deployed in round i, compare its projection
       (computed in round i) with its utility in round i + 1. *)
    let rec walk acc = function
      | (r1 : Core.Engine.round_record) :: (r2 : Core.Engine.round_record) :: rest ->
          let acc =
            List.fold_left
              (fun acc n ->
                if r2.utilities.(n) > 0.0 then
                  (r1.projected.(n) /. r2.utilities.(n)) :: acc
                else acc)
              acc r1.turned_on
          in
          walk acc (r2 :: rest)
      | _ -> acc
    in
    Array.of_list (walk [] r.rounds)

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:
          [ "early adopters"; "deployers"; "p10"; "median"; "p90"; "within 10%" ]
    in
    let g = Scenario.graph s in
    let sets =
      [
        ("cps+top5", Adopters.Strategy.select g (Adopters.Strategy.Cps_and_top 5));
        ("top5", Adopters.Strategy.select g (Adopters.Strategy.Top_degree 5));
        ( Printf.sprintf "top10%%(%d)" (max 5 (s.n / 10)),
          Adopters.Strategy.select g (Adopters.Strategy.Top_degree (max 5 (s.n / 10))) );
      ]
    in
    List.iter
      (fun (name, early) ->
        let cfg = { Core.Config.default with theta = 0.0; theta_off = 0.0 } in
        let r = Scenario.run ~early s cfg in
        let rs = ratios r in
        if Array.length rs = 0 then Table.add_row t [ name; "0"; "-"; "-"; "-"; "-" ]
        else
          Table.add_row t
            [
              name;
              string_of_int (Array.length rs);
              Printf.sprintf "%.3f" (Nsutil.Stats.percentile rs 10.0);
              Printf.sprintf "%.3f" (Nsutil.Stats.median rs);
              Printf.sprintf "%.3f" (Nsutil.Stats.percentile rs 90.0);
              Table.cell_pct
                (Nsutil.Stats.fraction (fun x -> x >= 0.9 && x <= 1.1) rs);
            ])
      sets;
    t
end
