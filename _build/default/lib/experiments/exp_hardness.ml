(* Theorem 6.1 (Appendix E): the SET-COVER reduction, with the
   brute-force optimum and the greedy heuristic compared against
   ground-truth coverage. *)

module Table = Nsutil.Table

module Setcover = struct
  let id = "setcover"
  let title =
    "Theorem 6.1: optimal early adopters solve SET-COVER on the reduction graph"

  let instance =
    Gadgets.Setcover.
      {
        universe = 8;
        subsets =
          [ [| 0; 1; 2 |]; [| 2; 3 |]; [| 3; 4; 5 |]; [| 5; 6; 7 |]; [| 0; 7 |]; [| 1; 6 |] ];
      }

  let run (_ : Scenario.t) =
    let t =
      Table.create
        ~header:[ "method"; "chosen subsets"; "elements covered"; "secure ASes" ]
    in
    let g = Gadgets.Setcover.build instance in
    let candidates = Array.to_list g.s1 in
    let statics = Bgp.Route_static.create g.graph in
    let weight = g.weight in
    let index_of s1_node =
      let idx = ref (-1) in
      Array.iteri (fun i v -> if v = s1_node then idx := i) g.s1;
      !idx
    in
    let describe early =
      List.map (fun e -> string_of_int (index_of e)) early |> String.concat ","
    in
    let eval early =
      let secure = Gadgets.Setcover.secure_after g ~early in
      let chosen = List.map index_of early in
      (secure, Gadgets.Setcover.covered instance ~chosen)
    in
    let k = 2 in
    let cfg = Gadgets.Setcover.config in
    let best, _ =
      Adopters.Strategy.brute_force_optimum cfg statics ~weight ~k ~candidates
    in
    let best_secure, best_cov = eval best in
    Table.add_row t
      [ "brute force (k=2)"; describe best; string_of_int best_cov; string_of_int best_secure ];
    let greedy = Adopters.Strategy.greedy cfg statics ~weight ~k ~candidates in
    let gr_secure, gr_cov = eval greedy in
    Table.add_row t
      [ "greedy (k=2)"; describe greedy; string_of_int gr_cov; string_of_int gr_secure ];
    let first_two = [ g.s1.(0); g.s1.(1) ] in
    let ft_secure, ft_cov = eval first_two in
    Table.add_row t
      [ "naive (subsets 0,1)"; describe first_two; string_of_int ft_cov; string_of_int ft_secure ];
    t
end
