(* Figure 13 / Section 7: the incoming-utility pathologies — buyer's
   remorse, per-destination turn-off incentives, and the oscillation
   demonstration. *)

module Table = Nsutil.Table
module Graph = Asgraph.Graph

module Fig13 = struct
  let id = "fig13"
  let title =
    "Figure 13 / 7.3: buyer's remorse — incentives to disable S*BGP (incoming utility)"

  let run (s : Scenario.t) =
    let t = Table.create ~header:[ "quantity"; "value" ] in
    (* Part 1: the constructed Figure-13 gadget. *)
    let r = Gadgets.Remorse.build () in
    let statics = Bgp.Route_static.create r.graph in
    let state = Gadgets.Remorse.initial_state r in
    let u_on = Core.Utility.all Gadgets.Remorse.config statics state ~weight:r.weight in
    let result =
      Core.Engine.run Gadgets.Remorse.config statics ~weight:r.weight ~state
    in
    let u_off =
      match result.rounds with
      | first :: _ -> first.projected.(r.isp)
      | [] -> u_on.(r.isp)
    in
    Table.add_row t [ "gadget: ISP utility while secure"; Table.cell_f u_on.(r.isp) ];
    Table.add_row t [ "gadget: ISP projected utility after disabling"; Table.cell_f u_off ];
    Table.add_row t
      [ "gadget: ISP secure at termination"; string_of_bool (Core.State.secure result.final r.isp) ];
    (* Part 2: scan the synthetic Internet for per-destination
       turn-off incentives (the paper: >= 10% of ISPs can find
       themselves in such a state). Sparse deployment states are where
       the Figure-13 pattern lives, so scan partially-deployed states
       at several thetas; each secure ISP is additionally examined
       with every currently-insecure ISP hypothetically secured one at
       a time being too expensive, we follow the paper and scan the
       states the dynamics actually visit. *)
    let cfg = { Core.Config.default with stub_tiebreak = false; cp_fraction = 0.2 } in
    let weight = Scenario.weights s cfg in
    let examined, found =
      Core.Analyses.turnoff_incentive_search cfg s.statics ~weight
    in
    Table.add_row t [ "search: ISPs probed in Figure-13 witness states"; string_of_int examined ];
    Table.add_row t
      [
        "search: ISPs with a per-destination turn-off incentive in some state";
        Printf.sprintf "%d (%s)" (List.length found)
          (Table.cell_pct (float_of_int (List.length found) /. float_of_int (max 1 examined)));
      ];
    t
end

module Oscillation = struct
  let id = "oscillation"
  let title = "Section 7.2: deployment oscillation (CHICKEN gadget, incoming utility)"

  let run (_ : Scenario.t) =
    let t = Table.create ~header:[ "quantity"; "value" ] in
    let c = Gadgets.Chicken.build () in
    let pp_pair (a, b) = Printf.sprintf "(%.0f, %.0f)" a b in
    Table.add_row t
      [ "payoff (ON, ON)"; pp_pair (Gadgets.Chicken.payoff c ~on10:true ~on20:true) ];
    Table.add_row t
      [ "payoff (ON, OFF)"; pp_pair (Gadgets.Chicken.payoff c ~on10:true ~on20:false) ];
    Table.add_row t
      [ "payoff (OFF, ON)"; pp_pair (Gadgets.Chicken.payoff c ~on10:false ~on20:true) ];
    Table.add_row t
      [ "payoff (OFF, OFF)"; pp_pair (Gadgets.Chicken.payoff c ~on10:false ~on20:false) ];
    let statics = Bgp.Route_static.create c.graph in
    let state = Core.State.create c.graph ~early:c.early ~frozen:c.frozen in
    let result =
      Core.Engine.run Gadgets.Chicken.config statics ~weight:c.weight ~state
    in
    Table.add_row t
      [
        "dynamics";
        (match result.termination with
        | Core.Engine.Oscillation { first_round } ->
            Printf.sprintf "oscillation (state of round %d revisited after %d rounds)"
              first_round
              (Core.Engine.rounds_run result)
        | Core.Engine.Stable -> "stable (unexpected)"
        | Core.Engine.Max_rounds -> "round cap (unexpected)");
      ];
    List.iter
      (fun (rr : Core.Engine.round_record) ->
        Table.add_row t
          [
            Printf.sprintf "round %d" rr.round;
            Printf.sprintf "on=[%s] off=[%s]"
              (String.concat "," (List.map string_of_int rr.turned_on))
              (String.concat "," (List.map string_of_int rr.turned_off));
          ])
      result.rounds;
    t
end

module Selector = struct
  let id = "selector"
  let title =
    "Appendix K.6 / Lemma K.5: the k-selector's stable states are exactly the \
     single-ON states (k = 3)"

  let run (_ : Scenario.t) =
    let t = Table.create ~header:[ "initial ON set"; "round-1 best responses"; "verdict" ] in
    let sel = Gadgets.Selector.build ~k:3 () in
    List.iter
      (fun on ->
        let r = Gadgets.Selector.run_from sel ~on in
        let rr = List.hd r.rounds in
        let moves =
          Printf.sprintf "on={%s} off={%s}"
            (String.concat "," (List.map string_of_int rr.turned_on))
            (String.concat "," (List.map string_of_int rr.turned_off))
        in
        let verdict =
          match (on, rr.turned_on, rr.turned_off) with
          | [ _ ], [], [] -> "stable (as Lemma K.5 predicts)"
          | [], _ :: _, [] -> "all enter (unstable, as predicted)"
          | _ :: _ :: _, [], off when List.sort compare off = List.sort compare on ->
              "all flee (unstable, as predicted)"
          | _ -> "UNEXPECTED"
        in
        Table.add_row t
          [ "{" ^ String.concat "," (List.map string_of_int on) ^ "}"; moves; verdict ])
      [ [ 0 ]; [ 1 ]; [ 2 ]; []; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0; 1; 2 ] ];
    t
end
