(* Figures 8, 9, 10, 11: theta sweeps, secure-path fractions, tiebreak
   distribution, and the stub-tiebreak sensitivity check. *)

module Table = Nsutil.Table
module Graph = Asgraph.Graph

let thetas = [ 0.0; 0.05; 0.1; 0.3; 0.5 ]

let adopter_sets (s : Scenario.t) = Adopters.Strategy.all_paper_sets (Scenario.graph s)

module Fig8 = struct
  let id = "fig8"
  let title =
    "Figure 8: fraction of ASes (a) and ISPs (b) secure at termination, per theta and \
     early-adopter set"

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:[ "early adopters"; "theta"; "secure ASes"; "secure ISPs"; "rounds" ]
    in
    (* The whole grid runs as one parallel sweep (Appendix C.3 style). *)
    let jobs =
      List.concat_map
        (fun (name, early) ->
          List.map
            (fun theta ->
              ((name, theta), ({ Core.Config.default with theta; theta_off = theta }, early)))
            thetas)
        (adopter_sets s)
    in
    let results = Scenario.run_many s (List.map snd jobs) in
    List.iter2
      (fun ((name, theta), _) r ->
        Table.add_row t
          [
            name;
            Table.cell_pct theta;
            Table.cell_pct (Core.Engine.secure_fraction r `As);
            Table.cell_pct (Core.Engine.secure_fraction r `Isp);
            string_of_int (Core.Engine.rounds_run r);
          ])
      jobs results;
    t
end

module Fig9 = struct
  let id = "fig9"
  let title = "Figure 9: fraction of secure source-destination paths (vs the f^2 bound)"

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:
          [ "early adopters"; "theta"; "secure paths"; "f^2"; "secure ASes (f)" ]
    in
    let sets =
      List.filter
        (fun (name, _) -> List.mem name [ "top5"; "5cps"; "cps+top5" ])
        (adopter_sets s)
    in
    List.iter
      (fun (name, early) ->
        List.iter
          (fun theta ->
            let cfg = { Core.Config.default with theta; theta_off = theta } in
            let r = Scenario.run ~early s cfg in
            let weight = Scenario.weights s cfg in
            let stats =
              Core.Analyses.secure_path_stats cfg s.statics r.final ~weight
            in
            Table.add_row t
              [
                name;
                Table.cell_pct theta;
                Table.cell_pct stats.fraction;
                Table.cell_pct stats.f_squared;
                Table.cell_pct (Core.Engine.secure_fraction r `As);
              ])
          [ 0.05; 0.3 ])
      sets;
    t
end

module Fig10 = struct
  let id = "fig10"
  let title = "Figure 10: distribution of tiebreak-set sizes (all source-dest pairs)"

  let run (s : Scenario.t) =
    let g = Scenario.graph s in
    let t =
      Table.create ~header:[ "population"; "size"; "pairs"; "fraction" ] in
    let emit name among =
      let dist = Core.Analyses.tiebreak_distribution s.statics ~among in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 dist in
      List.iter
        (fun (size, count) ->
          if size >= 1 then
            Table.add_row t
              [
                name;
                string_of_int size;
                string_of_int count;
                Printf.sprintf "%.4f" (float_of_int count /. float_of_int (max 1 total));
              ])
        dist;
      let mean = Bgp.Route_static.mean_tiebreak_size s.statics ~among in
      Table.add_row t [ name; "mean"; ""; Printf.sprintf "%.3f" mean ]
    in
    emit "isps" (Graph.is_isp g);
    emit "stubs" (Graph.is_stub g);
    t
end

module Fig11 = struct
  let id = "fig11"
  let title = "Figure 11: deployment is insensitive to stubs breaking ties on security"

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:[ "stub tiebreak"; "theta"; "secure ASes"; "secure ISPs" ]
    in
    let early = Scenario.case_study_adopters s in
    let jobs =
      List.concat_map
        (fun stub_tiebreak ->
          List.map
            (fun theta ->
              ( (stub_tiebreak, theta),
                ({ Core.Config.default with theta; theta_off = theta; stub_tiebreak },
                 early) ))
            [ 0.0; 0.05; 0.2 ])
        [ true; false ]
    in
    List.iter2
      (fun ((stub_tiebreak, theta), _) r ->
        Table.add_row t
          [
            string_of_bool stub_tiebreak;
            Table.cell_pct theta;
            Table.cell_pct (Core.Engine.secure_fraction r `As);
            Table.cell_pct (Core.Engine.secure_fraction r `Isp);
          ])
      jobs
      (Scenario.run_many s (List.map snd jobs));
    t
end
