(** Shared experimental setup: the synthetic Internet (base and
    augmented), cached per-destination routing info, and a one-call
    deployment run.

    Scale: the paper simulates N = 36K on a 200-node cluster; we
    default to N = 500 (override with the [SBGP_N] environment
    variable) — every statistic the dynamics depend on is
    shape-preserved (see DESIGN.md). The per-destination cache is
    shared across runs, so parameter sweeps only pay for engine
    rounds. *)

type t = {
  n : int;
  seed : int;
  built : Topology.Gen.built;
  statics : Bgp.Route_static.t;
  built_aug : Topology.Gen.built Lazy.t;
  statics_aug : Bgp.Route_static.t Lazy.t;
}

val default_n : unit -> int
(** [SBGP_N] env var, else 500. *)

val create : ?n:int -> ?seed:int -> unit -> t

val graph : t -> Asgraph.Graph.t
val graph_aug : t -> Asgraph.Graph.t
val cps : t -> int list
val top_isps : t -> int -> int list
val case_study_adopters : t -> int list
(** The Section 5 set: the five CPs plus the top-5 ISPs by degree. *)

val run :
  ?augmented:bool ->
  ?early:int list ->
  t ->
  Core.Config.t ->
  Core.Engine.result
(** Build weights from [cfg.cp_fraction], create the initial state
    (honouring the ablation switches), run the engine. [early]
    defaults to {!case_study_adopters}. *)

val weights : ?augmented:bool -> t -> Core.Config.t -> float array

type job_error = { job : int; error : string }
(** A failed sweep job: its index in the submitted list and the
    printed exception. *)

val run_many_outcomes :
  ?augmented:bool ->
  t ->
  (Core.Config.t * int list) list ->
  (Core.Engine.result, job_error) result list
(** Run several (config, early-adopter) simulations, fanning out over
    domains ({!Parallel.Pool}) when cores are available — the
    DryadLINQ-style sweep of Appendix C.3. The per-destination cache
    is primed first so workers only read it; results are identical to
    sequential runs. Failures are contained per job: one crashing
    simulation yields an [Error] outcome in its slot and every other
    job still completes. *)

val run_many :
  ?augmented:bool ->
  t ->
  (Core.Config.t * int list) list ->
  Core.Engine.result list
(** {!run_many_outcomes} for all-or-nothing callers: raises [Failure]
    with job attribution if any job failed. *)
