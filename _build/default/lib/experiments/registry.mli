(** The experiment registry: every table and figure of the paper's
    evaluation, addressable by id (see DESIGN.md's experiment
    index). *)

type experiment = {
  id : string;
  title : string;
  run : Scenario.t -> Nsutil.Table.t;
}

val all : experiment list
(** In paper order. Ids: table1-table4, fig3-fig14, oscillation,
    setcover, attacks, ablations. *)

val find : string -> experiment option
val ids : unit -> string list

val run_all :
  ?only:string list -> Scenario.t -> (experiment * Nsutil.Table.t * float) list
(** Run experiments (all, or the given ids) and return each with its
    result table and wall-clock seconds. *)

val run_streaming :
  ?only:string list ->
  Scenario.t ->
  (experiment -> Nsutil.Table.t -> float -> unit) ->
  unit
(** Like {!run_all} but invokes the callback as each experiment
    completes (long sweeps print incrementally). *)
