(* The Section 5 case study: figures 3-7 share the same single run
   (five CPs + top-5 ISPs as early adopters, theta = 5%, x = 10%). *)

module Table = Nsutil.Table
module Graph = Asgraph.Graph
module Engine = Core.Engine

let config = Core.Config.default

(* One engine run per scenario, shared by the five figures. *)
let cache : (int * int, Engine.result) Hashtbl.t = Hashtbl.create 4

let result (s : Scenario.t) =
  let key = (s.n, s.seed) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let r = Scenario.run s config in
      Hashtbl.replace cache key r;
      r

module Fig3 = struct
  let id = "fig3"
  let title = "Figure 3: number of ASes / ISPs newly secure per round (case study)"

  let run (s : Scenario.t) =
    let r = result s in
    let t =
      Table.create
        ~header:
          [ "round"; "new secure ASes"; "new secure ISPs"; "secure ASes"; "secure ISPs" ]
    in
    let prev_as = ref r.initial_secure_as in
    let prev_isp = ref r.initial_secure_isp in
    List.iter
      (fun (rr : Engine.round_record) ->
        Table.add_row t
          [
            string_of_int rr.round;
            string_of_int (rr.secure_as - !prev_as);
            string_of_int (rr.secure_isp - !prev_isp);
            string_of_int rr.secure_as;
            string_of_int rr.secure_isp;
          ];
        prev_as := rr.secure_as;
        prev_isp := rr.secure_isp)
      r.rounds;
    t
end

(* Reconstruct the set of ISPs secure after each round. *)
let secure_by_round (s : Scenario.t) (r : Engine.result) =
  let g = Scenario.graph s in
  let early = Scenario.case_study_adopters s in
  let current = Hashtbl.create 64 in
  List.iter (fun a -> if Graph.is_isp g a then Hashtbl.replace current a ()) early;
  List.map
    (fun (rr : Engine.round_record) ->
      List.iter (fun n -> Hashtbl.replace current n ()) rr.turned_on;
      List.iter (fun n -> Hashtbl.remove current n) rr.turned_off;
      (rr.round, Hashtbl.fold (fun k () acc -> k :: acc) current []))
    r.rounds

module Fig4 = struct
  let id = "fig4"
  let title = "Figure 4: normalized utility of exemplar competing ISPs per round"

  (* Exemplars: the first-mover (deployed round 1), a catch-up ISP
     (deployed later after losing utility), and a holdout that never
     deploys (Section 5.6: holdouts lose). *)
  let pick (s : Scenario.t) (r : Engine.result) =
    let g = Scenario.graph s in
    let baseline = r.baseline in
    let deployed_round =
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (rr : Engine.round_record) ->
          List.iter (fun n -> Hashtbl.replace tbl n rr.round) rr.turned_on)
        r.rounds;
      tbl
    in
    let first_mover =
      Hashtbl.fold
        (fun n rd acc -> if rd = 1 && baseline.(n) > 0.0 then Some n else acc)
        deployed_round None
    in
    let catch_up =
      Hashtbl.fold
        (fun n rd acc ->
          match acc with
          | Some (_, best) when best >= rd -> acc
          | _ -> if rd >= 2 && baseline.(n) > 0.0 then Some (n, rd) else acc)
        deployed_round None
      |> Option.map fst
    in
    let holdout =
      let found = ref None in
      for i = 0 to Graph.n g - 1 do
        if
          !found = None && Graph.is_isp g i
          && (not (Hashtbl.mem deployed_round i))
          && (not (Core.State.secure r.final i))
          && baseline.(i) > 0.0
        then found := Some i
      done;
      !found
    in
    (first_mover, catch_up, holdout)

  let run (s : Scenario.t) =
    let r = result s in
    let first_mover, catch_up, holdout = pick s r in
    let name = function None -> "-" | Some n -> string_of_int n in
    let t =
      Table.create
        ~header:
          [
            "round";
            "first-mover AS " ^ name first_mover;
            "catch-up AS " ^ name catch_up;
            "holdout AS " ^ name holdout;
          ]
    in
    let cell (rr : Engine.round_record) = function
      | None -> "-"
      | Some n -> Printf.sprintf "%.3f" (rr.utilities.(n) /. r.baseline.(n))
    in
    List.iter
      (fun (rr : Engine.round_record) ->
        Table.add_row t
          [
            string_of_int rr.round;
            cell rr first_mover;
            cell rr catch_up;
            cell rr holdout;
          ])
      r.rounds;
    t
end

module Fig5 = struct
  let id = "fig5"
  let title =
    "Figure 5: median utility and projected utility (normalized by starting utility) of \
     ISPs in the round they decide to deploy"

  let run (s : Scenario.t) =
    let r = result s in
    let t =
      Table.create
        ~header:[ "round"; "deployers"; "median u / u0"; "median proj / u0" ]
    in
    List.iter
      (fun (rr : Engine.round_record) ->
        let with_baseline = List.filter (fun n -> r.baseline.(n) > 0.0) rr.turned_on in
        if with_baseline <> [] then begin
          let us =
            Array.of_list
              (List.map (fun n -> rr.utilities.(n) /. r.baseline.(n)) with_baseline)
          in
          let ps =
            Array.of_list
              (List.map (fun n -> rr.projected.(n) /. r.baseline.(n)) with_baseline)
          in
          Table.add_row t
            [
              string_of_int rr.round;
              string_of_int (List.length with_baseline);
              Printf.sprintf "%.3f" (Nsutil.Stats.median us);
              Printf.sprintf "%.3f" (Nsutil.Stats.median ps);
            ]
        end)
      r.rounds;
    t
end

module Fig6 = struct
  let id = "fig6"
  let title = "Figure 6: cumulative fraction of ISPs secure per round, by degree"

  let buckets = [ (1, 10); (11, 25); (26, 100); (101, max_int) ]

  let bucket_name (lo, hi) =
    if hi = max_int then Printf.sprintf "deg %d+" lo else Printf.sprintf "deg %d-%d" lo hi

  let run (s : Scenario.t) =
    let r = result s in
    let g = Scenario.graph s in
    let isps_in (lo, hi) =
      let acc = ref [] in
      for i = 0 to Graph.n g - 1 do
        let d = Graph.degree g i in
        if Graph.is_isp g i && d >= lo && d <= hi then acc := i :: !acc
      done;
      !acc
    in
    let per_bucket = List.map (fun b -> (b, isps_in b)) buckets in
    let t =
      Table.create
        ~header:("round" :: List.map (fun (b, _) -> bucket_name b) per_bucket)
    in
    List.iter
      (fun (round, secure_isps) ->
        let cells =
          List.map
            (fun (_, members) ->
              let total = List.length members in
              if total = 0 then "-"
              else begin
                let sec =
                  List.length (List.filter (fun i -> List.mem i secure_isps) members)
                in
                Printf.sprintf "%.3f" (float_of_int sec /. float_of_int total)
              end)
            per_bucket
        in
        Table.add_row t (string_of_int round :: cells))
      (secure_by_round s (result s));
    ignore r;
    t
end

module Fig7 = struct
  let id = "fig7"
  let title = "Figure 7: chain reactions (adjacent deployments in consecutive rounds)"

  let run (s : Scenario.t) =
    let r = result s in
    let g = Scenario.graph s in
    let pairs = Core.Analyses.chain_reactions r g in
    let t = Table.create ~header:[ "earlier AS"; "later AS"; "relationship" ] in
    List.iteri
      (fun i (n, m) ->
        if i < 20 then
          Table.add_row t
            [
              string_of_int n;
              string_of_int m;
              (match Graph.rel g n m with
              | Some rel -> Graph.rel_to_string rel
              | None -> "?");
            ])
      pairs;
    Table.add_row t [ "total"; string_of_int (List.length pairs); "" ];
    t
end
