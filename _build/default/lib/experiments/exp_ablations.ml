(* Ablations of the proposal's two mechanisms (DESIGN.md): remove the
   SecP tie-break or remove simplex S*BGP and watch deployment
   collapse. *)

module Table = Nsutil.Table

module Ablations = struct
  let id = "ablations"
  let title = "Ablations: remove SecP or simplex S*BGP (case-study parameters)"

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:[ "variant"; "theta"; "secure ASes"; "secure ISPs"; "rounds" ]
    in
    let variants =
      [
        ("full proposal", Core.Config.default);
        ("no SecP (security never affects routing)",
         { Core.Config.default with disable_secp = true });
        ("no simplex (stubs never upgraded)",
         { Core.Config.default with disable_simplex = true });
        ("no simplex, high cost",
         { Core.Config.default with disable_simplex = true; theta = 0.3; theta_off = 0.3 });
        ("full proposal, high cost",
         { Core.Config.default with theta = 0.3; theta_off = 0.3 });
      ]
    in
    List.iter
      (fun (name, cfg) ->
        let r = Scenario.run s cfg in
        Table.add_row t
          [
            name;
            Table.cell_pct cfg.theta;
            Table.cell_pct (Core.Engine.secure_fraction r `As);
            Table.cell_pct (Core.Engine.secure_fraction r `Isp);
            string_of_int (Core.Engine.rounds_run r);
          ])
      variants;
    t
end
