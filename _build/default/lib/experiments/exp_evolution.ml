(* Section 8.4 extension: deployment on an evolving AS graph. After
   the case-study dynamics stabilize, the graph grows (new stubs
   multihome, preferentially to secure ISPs when the market rewards
   security), routing state is rebuilt, and the dynamics continue —
   epoch after epoch. *)

module Table = Nsutil.Table
module Graph = Asgraph.Graph

module Evolution = struct
  let id = "evolution"
  let title =
    "Section 8.4: deployment across graph-growth epochs (new stubs prefer secure ISPs)"

  let epochs = 3
  let growth_fraction = 0.15
  let secure_bias = 2.0

  let run (s : Scenario.t) =
    let cfg = Core.Config.default in
    let t =
      Table.create
        ~header:
          [
            "epoch";
            "ASes";
            "secure ASes";
            "secure ISPs";
            "new stubs on secure ISPs";
            "rounds";
          ]
    in
    let early = Scenario.case_study_adopters s in
    let rec epoch k g full_isps =
      let statics = Bgp.Route_static.create g in
      let weight = Traffic.Weights.assign g ~cp_fraction:cfg.cp_fraction in
      let state = Core.State.create g ~early in
      List.iter
        (fun i ->
          if (not (Core.State.pinned state i)) && i < Graph.n g && Graph.is_isp g i then
            ignore (Core.State.enable state i))
        full_isps;
      let result = Core.Engine.run cfg statics ~weight ~state in
      let n = Graph.n g in
      (* How many of this epoch's newly added stubs landed on a secure
         provider? (Epoch 0 has none.) *)
      let base_n = s.n in
      ignore base_n;
      let secure_frac_row new_on_secure =
        Table.add_row t
          [
            string_of_int k;
            string_of_int n;
            Table.cell_pct (Core.Engine.secure_fraction result `As);
            Table.cell_pct (Core.Engine.secure_fraction result `Isp);
            new_on_secure;
            string_of_int (Core.Engine.rounds_run result);
          ]
      in
      if k >= epochs then secure_frac_row "-"
      else begin
        let full_after = ref [] in
        for i = 0 to n - 1 do
          if Graph.is_isp g i && Core.State.full result.final i then
            full_after := i :: !full_after
        done;
        let grown =
          Topology.Evolve.grow g
            ~new_stubs:(max 1 (int_of_float (growth_fraction *. float_of_int n)))
            ~secure_bias
            ~is_secure:(fun i -> Core.State.secure result.final i)
            ~seed:(100 + k)
        in
        (* Count new stubs with at least one secure provider. *)
        let on_secure = ref 0 in
        let added = Graph.n grown - n in
        for stub = n to Graph.n grown - 1 do
          let hit = ref false in
          Graph.iter_providers grown stub (fun p ->
              if (not !hit) && Core.State.secure result.final p then hit := true);
          if !hit then incr on_secure
        done;
        secure_frac_row
          (Printf.sprintf "%d/%d (%s)" !on_secure added
             (Table.cell_pct (float_of_int !on_secure /. float_of_int (max 1 added))));
        epoch (k + 1) grown !full_after
      end
    in
    epoch 0 (Scenario.graph s) [];
    t
end
