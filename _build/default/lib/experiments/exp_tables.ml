(* Tables 1-4 of the paper. *)

module Table = Nsutil.Table
module Graph = Asgraph.Graph
module Metrics = Asgraph.Metrics

(* Table 1: DIAMOND counts per early adopter (Section 5.1). *)
module Table1 = struct
  let id = "table1"
  let title = "Table 1: diamonds per early adopter (two ISPs, a stub, one adopter)"

  let run (s : Scenario.t) =
    let t = Table.create ~header:[ "early adopter"; "kind"; "degree"; "diamonds" ] in
    let g = Scenario.graph s in
    let early = Scenario.case_study_adopters s in
    let counts = Core.Analyses.diamonds s.statics ~early in
    List.iter
      (fun (a, count) ->
        Table.add_row t
          [
            string_of_int a;
            Asgraph.As_class.to_string (Graph.klass g a);
            string_of_int (Graph.degree g a);
            string_of_int count;
          ])
      counts;
    t
end

(* Table 2: AS graph summary, base vs augmented (Appendix D). *)
module Table2 = struct
  let id = "table2"
  let title = "Table 2: AS graph summary (base vs augmented)"

  let row name g =
    let s = Metrics.summary g in
    [
      name;
      string_of_int s.nodes;
      string_of_int s.peer_edges;
      string_of_int s.cp_edges;
      Table.cell_pct (Metrics.stub_fraction g);
      string_of_int s.max_degree;
    ]

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:[ "graph"; "ASes"; "peering"; "customer-provider"; "stubs"; "max degree" ]
    in
    Table.add_row t (row "synthetic (Cyclops+IXP analogue)" (Scenario.graph s));
    Table.add_row t (row "augmented" (Scenario.graph_aug s));
    t
end

(* Table 3: mean path length from each CP, base vs augmented. *)
module Table3 = struct
  let id = "table3"
  let title = "Table 3: mean CP path length (base vs augmented graph)"

  let run (s : Scenario.t) =
    let t = Table.create ~header:[ "content provider"; "base"; "augmented" ] in
    List.iter
      (fun cp ->
        let base = Bgp.Route_static.mean_path_length s.statics ~from:cp in
        let aug =
          Bgp.Route_static.mean_path_length (Lazy.force s.statics_aug) ~from:cp
        in
        Table.add_row t
          [ string_of_int cp; Printf.sprintf "%.2f" base; Printf.sprintf "%.2f" aug ])
      (Scenario.cps s);
    t
end

(* Table 4: CP vs Tier-1 degrees, base vs augmented. *)
module Table4 = struct
  let id = "table4"
  let title = "Table 4: degrees of CPs and Tier 1s (base vs augmented graph)"

  let run (s : Scenario.t) =
    let t = Table.create ~header:[ "AS"; "kind"; "degree (base)"; "degree (augmented)" ] in
    let base = Scenario.graph s in
    let aug = Scenario.graph_aug s in
    let add kind node =
      Table.add_row t
        [
          string_of_int node;
          kind;
          string_of_int (Graph.degree base node);
          string_of_int (Graph.degree aug node);
        ]
    in
    List.iter (add "cp") (Scenario.cps s);
    List.iter (add "tier1") s.built.tier1;
    t
end
