(* Section 8.2 extension: heterogeneous deployment thresholds.
   ISPs do not share one theta in reality (cost structures and
   projection errors differ); the sweep checks that the deployment
   outcome is robust to randomizing theta per ISP. *)

module Table = Nsutil.Table

module Jitter = struct
  let id = "jitter"
  let title =
    "Section 8.2: robustness to per-ISP threshold heterogeneity (theta_i = theta * (1 \
     +/- jitter))"

  let run (s : Scenario.t) =
    let t =
      Table.create
        ~header:[ "theta"; "jitter"; "secure ASes"; "secure ISPs"; "rounds" ]
    in
    let early = Scenario.case_study_adopters s in
    let jobs =
      List.concat_map
        (fun theta ->
          List.map
            (fun theta_jitter ->
              ( (theta, theta_jitter),
                ({ Core.Config.default with theta; theta_off = theta; theta_jitter },
                 early) ))
            [ 0.0; 0.5; 1.0 ])
        [ 0.05; 0.10; 0.30 ]
    in
    List.iter2
      (fun ((theta, theta_jitter), _) r ->
        Table.add_row t
          [
            Table.cell_pct theta;
            Table.cell_pct theta_jitter;
            Table.cell_pct (Core.Engine.secure_fraction r `As);
            Table.cell_pct (Core.Engine.secure_fraction r `Isp);
            string_of_int (Core.Engine.rounds_run r);
          ])
      jobs
      (Scenario.run_many s (List.map snd jobs));
    t
end
