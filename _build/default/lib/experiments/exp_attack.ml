(* Appendix B and message-layer security demos. *)

module Table = Nsutil.Table

module Attacks = struct
  let id = "attacks"
  let title = "Appendix B / message layer: attacks and what each mechanism catches"

  let run (_ : Scenario.t) =
    let t = Table.create ~header:[ "attack"; "defence"; "detected / safe" ] in
    Table.add_row t
      [
        "prefix origin hijack";
        "RPKI origin validation (ROA)";
        string_of_bool (Bgpsec.Attack.origin_hijack_detected ());
      ];
    Table.add_row t
      [
        "path splice / shortening";
        "S-BGP path attestations";
        string_of_bool (Bgpsec.Attack.path_forgery_detected ());
      ];
    Table.add_row t
      [
        "replay to wrong neighbor";
        "per-target attestations";
        string_of_bool (Bgpsec.Attack.replay_to_wrong_neighbor_detected ());
      ];
    let with_delegation, without_delegation = Bgpsec.Attack.delegation_risk () in
    Table.add_row t
      [
        "provider forges for a key-delegating stub";
        "none (the footnote's warning: delegation cedes security)";
        Printf.sprintf "forgery validates: %b (vs %b without delegation)" with_delegation
          without_delegation;
      ];
    let sound = Bgpsec.Attack.appendix_b ~prefer_partial:false in
    let unsound = Bgpsec.Attack.appendix_b ~prefer_partial:true in
    Table.add_row t
      [
        "Appendix B forged link, fully-secure-only rule";
        Printf.sprintf "keeps true route via AS %d" sound.next_hop;
        string_of_bool (not sound.chose_false_path);
      ];
    Table.add_row t
      [
        "Appendix B forged link, partial-preference rule";
        Printf.sprintf "lured onto forged route via AS %d" unsound.next_hop;
        string_of_bool (not unsound.chose_false_path) ^ " (attack succeeds)";
      ];
    t
end
