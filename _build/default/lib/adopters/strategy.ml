module Graph = Asgraph.Graph
module Metrics = Asgraph.Metrics
module Prng = Nsutil.Prng

type t =
  | None_
  | Top_degree of int
  | Content_providers
  | Cps_and_top of int
  | Random_isps of int * int
  | Explicit of int list

let dedup l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l

let select g = function
  | None_ -> []
  | Top_degree k -> Metrics.top_by_degree g k
  | Content_providers -> Graph.nodes_of_class g Asgraph.As_class.Cp
  | Cps_and_top k ->
      dedup (Graph.nodes_of_class g Asgraph.As_class.Cp @ Metrics.top_by_degree g k)
  | Random_isps (k, seed) ->
      let isps = Array.of_list (Graph.nodes_of_class g Asgraph.As_class.Isp) in
      let rng = Prng.create ~seed in
      Prng.shuffle rng isps;
      Array.to_list (Array.sub isps 0 (min k (Array.length isps)))
  | Explicit l -> dedup l

let to_string = function
  | None_ -> "none"
  | Top_degree k -> Printf.sprintf "top%d" k
  | Content_providers -> "5cps"
  | Cps_and_top k -> Printf.sprintf "cps+top%d" k
  | Random_isps (k, _) -> Printf.sprintf "random%d" k
  | Explicit l -> Printf.sprintf "explicit(%d)" (List.length l)

let all_paper_sets g =
  (* The paper's top-100 / top-200 sets are ~1.7% / ~3.3% of its 6K
     ISPs; scale by ISP count so small graphs keep the same relative
     coverage. *)
  let isps = Graph.count_class g Asgraph.As_class.Isp in
  let scale pct = max 5 (isps * pct / 100) in
  let sets =
    [
      ("none", None_);
      ("top5", Top_degree 5);
      ("top10", Top_degree 10);
      (* The paper's top-100 / top-200 analogues. *)
      (Printf.sprintf "top10%%(%d)" (scale 10), Top_degree (scale 10));
      (Printf.sprintf "top20%%(%d)" (scale 20), Top_degree (scale 20));
      ("5cps", Content_providers);
      ("cps+top5", Cps_and_top 5);
      (Printf.sprintf "random(%d)" (scale 20), Random_isps (scale 20, 7));
    ]
  in
  List.map (fun (name, s) -> (name, select g s)) sets

let run_once cfg statics ~weight ~early =
  let g = Bgp.Route_static.graph statics in
  let state = Core.State.create g ~early in
  let result = Core.Engine.run cfg statics ~weight ~state in
  Core.State.secure_count result.final

(* All k-subsets of a list, lazily folded. *)
let rec subsets k l =
  if k = 0 then [ [] ]
  else begin
    match l with
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
  end

let brute_force_optimum cfg statics ~weight ~k ~candidates =
  let best = ref ([], -1) in
  List.iter
    (fun early ->
      let count = run_once cfg statics ~weight ~early in
      if count > snd !best then best := (early, count))
    (subsets k candidates);
  !best

let greedy cfg statics ~weight ~k ~candidates =
  let chosen = ref [] in
  for _ = 1 to k do
    let best = ref None in
    List.iter
      (fun c ->
        if not (List.mem c !chosen) then begin
          let count = run_once cfg statics ~weight ~early:(c :: !chosen) in
          match !best with
          | Some (_, b) when b >= count -> ()
          | _ -> best := Some (c, count)
        end)
      candidates;
    match !best with Some (c, _) -> chosen := c :: !chosen | None -> ()
  done;
  List.rev !chosen
