lib/adopters/strategy.mli: Asgraph Bgp Core
