lib/adopters/strategy.ml: Array Asgraph Bgp Core Hashtbl List Nsutil Printf
