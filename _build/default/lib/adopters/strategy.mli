(** Early-adopter selection (Section 6).

    Theorem 6.1 shows choosing the optimal set is NP-hard (even to
    approximate), so the paper evaluates heuristics; this module
    implements them plus a brute-force optimum for tiny graphs. *)

type t =
  | None_
  | Top_degree of int  (** the k highest-degree ISPs (paper: "top-k") *)
  | Content_providers  (** all CPs *)
  | Cps_and_top of int  (** the five CPs plus top-k ISPs (case study: k = 5) *)
  | Random_isps of int * int  (** (k, seed) *)
  | Explicit of int list

val select : Asgraph.Graph.t -> t -> int list
(** The early-adopter node set; deduplicated, stable order. *)

val to_string : t -> string

val all_paper_sets : Asgraph.Graph.t -> (string * int list) list
(** The sets compared in Figure 8, scaled for graph size: none, top-5,
    top-10, top-N/10 and top-N/5 by degree, the CPs, CPs+top-5, and
    N/5 random ISPs. *)

val brute_force_optimum :
  Core.Config.t ->
  Bgp.Route_static.t ->
  weight:float array ->
  k:int ->
  candidates:int list ->
  int list * int
(** Exhaustively try every k-subset of [candidates] as early adopters
    and return the one maximizing the number of secure ASes at
    termination (ties by first found), with that count. Exponential;
    for unit-test-sized graphs only. *)

val greedy :
  Core.Config.t ->
  Bgp.Route_static.t ->
  weight:float array ->
  k:int ->
  candidates:int list ->
  int list
(** Greedy heuristic: repeatedly add the candidate whose addition
    maximizes secure ASes at termination. The set-cover analogy
    suggests this is a reasonable (if unprovable, per Thm 6.1)
    heuristic. *)
