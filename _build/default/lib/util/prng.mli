(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every topology, workload and simulation is reproducible from a
    single integer seed. The core generator is splitmix64, which is
    also exposed as a stateless mixing function used for the BGP
    tie-break hash [H(a,b)] of Appendix A. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Two generators created
    with the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (statistically) independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pareto : t -> alpha:float -> xmin:float -> float
(** Pareto-distributed sample; used for skewed degree targets. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> from:int -> int array
(** [sample_without_replacement t k ~from:n] returns [k] distinct
    integers drawn uniformly from [\[0, n)]. Requires [k <= n]. *)

val mix2 : int -> int -> int
(** [mix2 a b] is a stateless 62-bit non-negative hash of the pair;
    the deterministic intradomain tie-break of Appendix A. *)

val mix : int -> int
(** Stateless splitmix64 finalizer of a single value (non-negative). *)
