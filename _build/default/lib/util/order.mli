(** Counting sort over small integer keys. *)

val by_small_key : key:(int -> int) -> max_key:int -> int -> int array
(** [by_small_key ~key ~max_key n] returns the permutation of
    [\[0, n)] sorted by [key] ascending (stable: equal keys keep index
    order). Elements with [key] outside [\[0, max_key\]] are placed
    last, in index order. O(n + max_key). *)
