(** Dense mutable bitsets over [\[0, n)]. *)

type t

val create : int -> t
(** All bits clear. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val assign : t -> int -> bool -> unit
val cardinal : t -> int
val copy : t -> t
val reset : t -> unit
val iter : t -> (int -> unit) -> unit
(** Iterate over set bits in increasing order. *)

val to_list : t -> int list
val equal : t -> t -> bool
val hash : t -> int
(** Order-sensitive content hash (for cycle detection over states). *)

val of_list : int -> int list -> t
