(** Small statistics toolkit for experiment outputs. *)

val mean : float array -> float
(** Mean of a non-empty array; 0 on empty. *)

val median : float array -> float
(** Median (average of middle two for even length); 0 on empty. Does
    not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]], nearest-rank with linear
    interpolation; 0 on empty. *)

val stddev : float array -> float

val minimum : float array -> float
val maximum : float array -> float

val histogram : bounds:float array -> float array -> int array
(** [histogram ~bounds values] counts values per bucket. Bucket [i]
    holds values in [(bounds.(i-1), bounds.(i)]]; bucket [0] is
    [<= bounds.(0)]; a final overflow bucket collects the rest.
    Result length is [Array.length bounds + 1]. *)

val ccdf : float array -> (float * float) list
(** Complementary CDF over the distinct values, as
    [(value, fraction strictly greater or equal)] pairs ascending. *)

val fraction : ('a -> bool) -> 'a array -> float
(** Fraction of elements satisfying the predicate; 0 on empty. *)
