type t = { words : Bytes.t; n : int }

(* One bit per element, stored in bytes: simple, cache-friendly and
   trivially hashable with the bytes content. *)

let create n = { words = Bytes.make ((n + 7) / 8) '\000'; n }
let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let b = Char.code (Bytes.unsafe_get t.words (i lsr 3)) in
  Bytes.unsafe_set t.words (i lsr 3) (Char.unsafe_chr (b lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = Char.code (Bytes.unsafe_get t.words (i lsr 3)) in
  Bytes.unsafe_set t.words (i lsr 3)
    (Char.unsafe_chr (b land lnot (1 lsl (i land 7)) land 0xff))

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let assign t i v = if v then set t i else clear t i

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let cardinal t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) t.words;
  !acc

let copy t = { words = Bytes.copy t.words; n = t.n }
let reset t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let iter t f =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let equal a b = a.n = b.n && Bytes.equal a.words b.words
let hash t = Hashtbl.hash (Bytes.to_string t.words)

let of_list n elts =
  let t = create n in
  List.iter (fun i -> set t i) elts;
  t
