(** Aligned text tables and CSV emission for experiment results. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty. *)

val row_count : t -> int

val to_string : t -> string
(** Monospace-aligned rendering with a separator under the header. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val print : t -> unit
(** [to_string] to stdout, followed by a newline. *)

val save_csv : t -> string -> unit
(** Write the CSV rendering to the given file path. *)

val cell_f : float -> string
(** Canonical float cell: 4 significant decimals, no trailing noise. *)

val cell_pct : float -> string
(** Render a ratio in [0,1] as a percentage with one decimal. *)
