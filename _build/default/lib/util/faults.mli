(** Deterministic fault injection for the fault-tolerance layer.

    A fault plan decides, at named *sites* threaded through the worker
    pool and the checkpoint writer, whether to inject a failure: a
    raised {!Injected} in a worker task, or a deliberate corruption of
    a checkpoint file. Decisions are a pure function of the plan's
    seed, the global shot counter and the site name, so a plan replays
    the same failure schedule on every (serial) run; the [budget]
    bounds the total number of injections so supervised retries always
    converge, and [after] arms the plan only from the given shot
    onward (letting tests kill a run at a chosen depth).

    Counters are atomics: a single plan is shared by all worker
    domains of a run. Under parallel execution the *set* of shots that
    fire is schedule-dependent, but the budget bound — the property
    retries rely on — holds regardless.

    The [SBGP_FAULTS] environment variable (seed:rate[:budget[:after]])
    builds a process-wide default plan; the test suite reruns the
    engine-parity suite under it. *)

exception Injected of { site : string; shot : int }

type t

type spec = { seed : int; rate : float; budget : int; after : int }

val create : ?rate:float -> ?budget:int -> ?after:int -> seed:int -> unit -> t
(** [rate] is the per-shot firing probability in [0, 1] (default 1);
    [budget] the maximum number of injections (default 1); [after]
    the number of initial shots that never fire (default 0). *)

val of_spec : spec -> t

val parse_spec : string -> (spec, string) result
(** Parse ["seed:rate[:budget[:after]]"]; [Error] is a printable
    one-line reason. *)

val of_env : unit -> t option
(** Build a plan from [SBGP_FAULTS] if set; malformed specs print a
    one-line stderr warning and yield [None]. *)

val fires : t -> string -> int option
(** Count one shot at the site; [Some shot] (consuming budget) when
    the plan injects here — used by callers that corrupt data rather
    than raise. *)

val trip : t -> string -> unit
(** [trip t site] raises {!Injected} when {!fires} does. *)

val shots : t -> int
(** Total shots counted so far. *)

val fired : t -> int
(** Injections delivered so far (bounded by the budget). *)
