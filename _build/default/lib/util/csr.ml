type t = { offsets : int array; data : int array }

let pack lists ~reversed =
  let n = Array.length lists in
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + List.length lists.(i)
  done;
  let data = Array.make offsets.(n) 0 in
  for i = 0 to n - 1 do
    if reversed then begin
      let k = ref (offsets.(i + 1) - 1) in
      List.iter
        (fun v ->
          data.(!k) <- v;
          decr k)
        lists.(i)
    end
    else begin
      let k = ref offsets.(i) in
      List.iter
        (fun v ->
          data.(!k) <- v;
          incr k)
        lists.(i)
    end
  done;
  { offsets; data }

let of_lists lists = pack lists ~reversed:false
let of_rev_lists lists = pack lists ~reversed:true

let rows t = Array.length t.offsets - 1
let row_length t i = t.offsets.(i + 1) - t.offsets.(i)
let get t i k = t.data.(t.offsets.(i) + k)

let iter_row t i f =
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    f t.data.(k)
  done

let fold_row t i f init =
  let acc = ref init in
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    acc := f !acc t.data.(k)
  done;
  !acc

let exists_row t i p =
  let rec loop k =
    if k >= t.offsets.(i + 1) then false
    else if p t.data.(k) then true
    else loop (k + 1)
  in
  loop t.offsets.(i)

let row_to_list t i =
  let acc = ref [] in
  for k = t.offsets.(i + 1) - 1 downto t.offsets.(i) do
    acc := t.data.(k) :: !acc
  done;
  !acc

let mem_row t i v = exists_row t i (fun x -> x = v)

let total t = Array.length t.data
