(** Hardened environment-variable parsing.

    Tuning knobs read from the environment ([SBGP_N], [SBGP_WORKERS],
    [SBGP_FAULTS]) must never let a typo silently reconfigure a run:
    malformed or out-of-range values are rejected with a one-line
    warning on stderr and the documented default is used instead. *)

val parse_int :
  name:string -> min:int -> default:int -> string option -> (int, string) result
(** Pure parsing step behind {!int_var}: [Ok default] when the
    variable is unset, [Ok v] when it holds an integer [>= min], and
    [Error warning] (a printable one-liner) for garbage, empty,
    fractional, zero-when-positive-required or below-minimum values. *)

val int_var : name:string -> ?min:int -> default:int -> unit -> int
(** Read an integer environment variable. Values below [min]
    (default 1) or unparsable print the {!parse_int} warning to stderr
    and yield [default]. *)
