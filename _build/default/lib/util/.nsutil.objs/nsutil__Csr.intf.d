lib/util/csr.mli:
