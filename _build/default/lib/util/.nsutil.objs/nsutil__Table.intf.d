lib/util/table.mli:
