lib/util/order.mli:
