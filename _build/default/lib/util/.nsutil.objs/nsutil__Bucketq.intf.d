lib/util/bucketq.mli:
