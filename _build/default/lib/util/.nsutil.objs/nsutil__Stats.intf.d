lib/util/stats.mli:
