lib/util/faults.ml: Atomic Char Printf Prng String Sys
