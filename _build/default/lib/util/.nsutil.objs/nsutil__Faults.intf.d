lib/util/faults.mli:
