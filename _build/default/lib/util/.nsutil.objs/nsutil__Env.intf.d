lib/util/env.mli:
