lib/util/env.ml: Printf String Sys
