lib/util/bitset.ml: Array Bytes Char Hashtbl List
