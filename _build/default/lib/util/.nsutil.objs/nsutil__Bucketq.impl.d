lib/util/bucketq.ml: Array Queue
