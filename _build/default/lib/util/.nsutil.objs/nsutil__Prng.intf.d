lib/util/prng.mli:
