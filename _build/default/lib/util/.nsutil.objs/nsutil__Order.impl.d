lib/util/order.ml: Array
