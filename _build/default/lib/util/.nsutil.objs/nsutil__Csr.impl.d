lib/util/csr.ml: Array List
