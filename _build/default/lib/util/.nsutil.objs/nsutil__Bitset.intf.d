lib/util/bitset.mli:
