let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = sorted_copy a in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (b.(lo) *. (1.0 -. frac)) +. (b.(min hi (n - 1)) *. frac)
  end

let median a = percentile a 50.0

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))
  end

let minimum a = Array.fold_left min infinity a
let maximum a = Array.fold_left max neg_infinity a

let histogram ~bounds values =
  let nb = Array.length bounds in
  let counts = Array.make (nb + 1) 0 in
  let bucket v =
    let rec loop i = if i >= nb then nb else if v <= bounds.(i) then i else loop (i + 1) in
    loop 0
  in
  Array.iter (fun v -> counts.(bucket v) <- counts.(bucket v) + 1) values;
  counts

let ccdf a =
  let n = Array.length a in
  if n = 0 then []
  else begin
    let b = sorted_copy a in
    let total = float_of_int n in
    let acc = ref [] in
    let i = ref 0 in
    while !i < n do
      let v = b.(!i) in
      (* fraction of samples >= v *)
      acc := (v, float_of_int (n - !i) /. total) :: !acc;
      while !i < n && b.(!i) = v do
        incr i
      done
    done;
    List.rev !acc
  end

let fraction p a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let c = Array.fold_left (fun acc x -> if p x then acc + 1 else acc) 0 a in
    float_of_int c /. float_of_int n
  end
