type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators" (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let int t bound =
  assert (bound > 0);
  (* Rejection-free modulo is fine here: bound is tiny relative to the
     62-bit range, so bias is negligible for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let pareto t ~alpha ~xmin =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  xmin /. (u ** (1.0 /. alpha))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample_without_replacement t k ~from =
  assert (k <= from);
  if 3 * k >= from then begin
    let all = Array.init from (fun i -> i) in
    shuffle t all;
    Array.sub all 0 k
  end
  else begin
    (* Sparse sampling: retry on collision. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t from in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

(* Pure-int mixing (no Int64 boxing): these sit in the innermost loop
   of the routing-tree computation via the TB hash of Appendix A. *)
let mix z =
  let z = z lxor (z lsr 33) in
  let z = z * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 29) in
  let z = z * 0x9E3779B9 in
  (z lxor (z lsr 32)) land max_int

let mix2 a b = mix ((a * 0x1000003) lxor mix b)
