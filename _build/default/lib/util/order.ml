let by_small_key ~key ~max_key n =
  let nb = max_key + 2 in
  (* Bucket [max_key + 1] collects out-of-range keys. *)
  let counts = Array.make nb 0 in
  let bucket i =
    let k = key i in
    if k >= 0 && k <= max_key then k else max_key + 1
  in
  for i = 0 to n - 1 do
    let b = bucket i in
    counts.(b) <- counts.(b) + 1
  done;
  let starts = Array.make nb 0 in
  for b = 1 to nb - 1 do
    starts.(b) <- starts.(b - 1) + counts.(b - 1)
  done;
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let b = bucket i in
    out.(starts.(b)) <- i;
    starts.(b) <- starts.(b) + 1
  done;
  out
