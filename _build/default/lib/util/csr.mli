(** Compressed sparse row storage for per-node integer lists.

    Used for adjacency lists and per-destination tiebreak sets, where
    millions of tiny lists would otherwise fragment the heap. *)

type t = private {
  offsets : int array;  (** length [n + 1]; row [i] is [data.(offsets.(i)) .. data.(offsets.(i+1) - 1)] *)
  data : int array;
}

val of_lists : int list array -> t
(** Pack an array of lists; row order is preserved. *)

val of_rev_lists : int list array -> t
(** Pack an array of lists that were accumulated in reverse; each row
    is emitted reversed (i.e. in original insertion order). *)

val rows : t -> int
val row_length : t -> int -> int
val get : t -> int -> int -> int
(** [get t i k] is the [k]-th element of row [i]. *)

val iter_row : t -> int -> (int -> unit) -> unit
val fold_row : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val exists_row : t -> int -> (int -> bool) -> bool
val row_to_list : t -> int -> int list
val mem_row : t -> int -> int -> bool

val total : t -> int
(** Total number of stored elements. *)
