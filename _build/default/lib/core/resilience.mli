(** Attack resilience under partial deployment (Sections 2.2.1, 6.4
    and insight 5: "minimize attacks during partial deployment").

    The paper quantifies the insecure status quo by the [15]-style
    statistic: "an arbitrary misbehaving AS can impact about half of
    the ASes in the Internet on average". This module reproduces that
    measurement and tracks how it shrinks as S*BGP deployment
    progresses: a malicious AS [m] announces a bogus one-hop route to
    a victim prefix; every AS then chooses between the legitimate
    route and the bogus one under the usual LP/SP/SecP/TB policy,
    where the bogus route can never be fully secure (m cannot produce
    the victim's signature), so any AS whose chosen legitimate route
    is fully secure and who applies SecP is immune.

    Deceived = the set of ASes whose chosen route leads to [m]. *)

type attack_outcome = {
  attacker : int;
  victim : int;
  deceived : int;  (** ASes routing to the attacker (excluding m itself) *)
  total : int;  (** ASes that had a route to the victim *)
}

val simulate_attack :
  Bgp.Route_static.t ->
  State.t ->
  stub_tiebreak:bool ->
  tiebreak:Bgp.Policy.tiebreak ->
  attacker:int ->
  victim:int ->
  attack_outcome
(** One prefix-hijack attempt. The attacker claims a direct (1-hop)
    route to the victim's prefix and exports it to everyone like an
    origination of its own; ASes rank it against their real route.
    Requires [attacker <> victim]. *)

val simulate_attack_ranked :
  Bgp.Route_static.t ->
  State.t ->
  stub_tiebreak:bool ->
  tiebreak:Bgp.Policy.tiebreak ->
  position:Bgp.Flexsim.secp_position ->
  attacker:int ->
  victim:int ->
  attack_outcome
(** Like {!simulate_attack} but routing with the security criterion at
    an arbitrary rank position ({!Bgp.Flexsim}): the Section 2.2.2
    "security first" ablation. With [Tiebreak_only] it agrees with
    {!simulate_attack}. *)

val mean_deceived_fraction_ranked :
  Bgp.Route_static.t ->
  State.t ->
  stub_tiebreak:bool ->
  tiebreak:Bgp.Policy.tiebreak ->
  position:Bgp.Flexsim.secp_position ->
  samples:int ->
  seed:int ->
  float

val mean_deceived_fraction :
  Bgp.Route_static.t ->
  State.t ->
  stub_tiebreak:bool ->
  tiebreak:Bgp.Policy.tiebreak ->
  samples:int ->
  seed:int ->
  float
(** Average deceived fraction over random (attacker, victim) pairs —
    the paper's "~half the Internet" statistic when nobody is secure,
    and the security dividend curve as deployment progresses. *)
