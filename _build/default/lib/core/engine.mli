(** The deployment process (Sections 3.2-3.3).

    Rounds of simultaneous myopic best response: in each round every
    unpinned ISP computes its utility in the current state S and its
    projected utility in (~S_n, S_{-n}) — the state where only it
    flips — and flips iff the projection exceeds (1 + θ) times its
    current utility (Eq. 3). Newly secure ISPs upgrade their stub
    customers to simplex S*BGP. The process ends at a stable state, on
    a detected oscillation (a repeated deployment state), or at the
    round cap.

    Projection uses the Appendix C.4 optimizations: destinations that
    are insecure even after the candidate's flip are skipped; under
    the outgoing model secure ISPs are never candidates (Theorem 6.2);
    and a (candidate, destination) pair is only recomputed when the
    flip can actually alter that destination's routing tree. *)

type round_record = {
  round : int;  (** 1-based *)
  utilities : float array;  (** every node's utility in the state at round start *)
  projected : float array;
      (** projected utility per node; equals [utilities] for
          non-candidates *)
  turned_on : int list;  (** ISPs that deployed at the end of this round *)
  turned_off : int list;
  secure_as : int;  (** counts after the round's flips *)
  secure_isp : int;
  secure_stub : int;
}

type termination = Stable | Oscillation of { first_round : int } | Max_rounds

type result = {
  baseline : float array;
      (** per-node utility before deployment began (nobody secure) *)
  initial_secure_as : int;
  initial_secure_isp : int;
  rounds : round_record list;  (** chronological *)
  final : State.t;
  termination : termination;
  dest_recomputed : int;
      (** across all rounds, destinations whose routing forest was
          recomputed (cross-round cache misses) *)
  dest_reused : int;  (** destinations served from the cross-round cache *)
}

val run :
  Config.t ->
  Bgp.Route_static.t ->
  weight:float array ->
  state:State.t ->
  result
(** Run to termination, mutating and returning [state] as [final].

    The per-round sweep fans destinations out over
    [Config.workers] domains ({!Parallel.Pool}) and reuses each
    destination's routing forest across rounds when no flip could
    have changed it ({!Incremental}). Both are transparent: the
    result is structurally identical — float-for-float — for any
    worker count, because workers compute pure per-destination
    values and all float accumulation happens in one serial pass in
    destination order. *)

val secure_fraction : result -> [ `As | `Isp ] -> float
(** Fraction of ASes (resp. ISPs) secure at termination. *)

val rounds_run : result -> int

val cache_hit_rate : result -> float
(** [dest_reused / (dest_recomputed + dest_reused)]; 0 if no rounds ran. *)
