lib/core/analyses.ml: Array Asgraph Bgp Bytes Config Engine Hashtbl List Nsutil Option State Utility
