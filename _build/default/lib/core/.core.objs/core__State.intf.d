lib/core/state.mli: Asgraph Bytes
