lib/core/engine.ml: Array Asgraph Bgp Bytes Config Float Hashtbl Incremental List Nsutil Option Parallel State Utility
