lib/core/engine.ml: Array Asgraph Bgp Bytes Checkpoint Config Float Hashtbl Incremental Int64 List Marshal Nsutil Option Parallel Printf Scrypto State String Utility
