lib/core/engine.ml: Array Asgraph Bgp Bytes Config Float Hashtbl List Nsutil Option State Utility
