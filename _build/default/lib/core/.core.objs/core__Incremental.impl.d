lib/core/incremental.ml: Array Asgraph Bgp Bytes Marshal State
