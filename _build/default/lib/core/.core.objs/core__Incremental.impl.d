lib/core/incremental.ml: Array Asgraph Bgp Bytes State
