lib/core/utility.mli: Asgraph Bgp Config State
