lib/core/analyses.mli: Asgraph Bgp Config Engine State
