lib/core/utility.ml: Array Asgraph Bgp Bytes Config Hashtbl List Option State
