lib/core/checkpoint.ml: Buffer Bytes Char Fun Int32 Int64 Nsutil Printexc Printf Scrypto Stdlib String Sys
