lib/core/state.ml: Asgraph Bytes List Nsutil Option Printf
