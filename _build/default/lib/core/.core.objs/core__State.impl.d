lib/core/state.ml: Asgraph Bytes List Marshal Nsutil Option Printf
