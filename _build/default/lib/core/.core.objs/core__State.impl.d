lib/core/state.ml: Asgraph Bytes List Nsutil Printf
