lib/core/resilience.mli: Bgp State
