lib/core/config.ml: Bgp Parallel
