lib/core/config.ml: Bgp
