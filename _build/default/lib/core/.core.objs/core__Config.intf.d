lib/core/config.mli: Bgp
