lib/core/resilience.ml: Array Asgraph Bgp Bytes List Nsutil State
