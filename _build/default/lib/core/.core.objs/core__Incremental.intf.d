lib/core/incremental.mli: Bgp Bytes State
