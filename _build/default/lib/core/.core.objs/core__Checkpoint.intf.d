lib/core/checkpoint.mli: Nsutil
