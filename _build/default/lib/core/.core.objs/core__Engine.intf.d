lib/core/engine.mli: Bgp Config State
