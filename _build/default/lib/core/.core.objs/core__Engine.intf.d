lib/core/engine.mli: Bgp Config Nsutil State
