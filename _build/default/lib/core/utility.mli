(** ISP utility (Section 3.3).

    Outgoing utility (Eq. 1): total weight of traffic an ISP forwards
    towards destinations reached over one of its customer edges.
    Incoming utility (Eq. 2): total weight of traffic entering the ISP
    over customer edges, across all destinations. *)

val contribution :
  Config.utility_model ->
  Asgraph.Graph.t ->
  Bgp.Route_static.dest_info ->
  Bgp.Forest.scratch ->
  weight:float array ->
  int ->
  float
(** Utility the given node derives from this one destination under the
    already-computed routing forest. O(1) for [Outgoing],
    O(#customers) for [Incoming]. *)

val accumulate :
  Config.utility_model ->
  Asgraph.Graph.t ->
  Bgp.Route_static.dest_info ->
  Bgp.Forest.scratch ->
  weight:float array ->
  into:float array ->
  unit
(** Add every node's contribution for this destination into [into];
    one O(N) pass. *)

val contribution_pairs :
  Config.utility_model ->
  Asgraph.Graph.t ->
  Bgp.Route_static.dest_info ->
  Bgp.Forest.scratch ->
  weight:float array ->
  int array * float array
(** The destination's utility contributions as an explicit addend
    stream [(targets, values)]: {!add_pairs} on the result performs
    float-for-float the same additions, in the same order, as
    {!accumulate} on the same forest — so a cached stream replays
    bit-identically across rounds and worker counts. Targets repeat
    under [Incoming] (one addend per customer edge). *)

val add_pairs : int array * float array -> into:float array -> unit
(** Replay an addend stream from {!contribution_pairs}. *)

val all :
  Config.t ->
  Bgp.Route_static.t ->
  State.t ->
  weight:float array ->
  float array
(** Full utility vector over all destinations for the given state.
    Allocates its own scratch; intended for analyses rather than the
    inner loop of {!Engine}. *)

val customer_volumes :
  Config.t ->
  Bgp.Route_static.t ->
  State.t ->
  weight:float array ->
  (int * float) list array
(** Per node, the traffic volume entering over each customer edge
    (summed across all destinations), as [(customer, volume)] pairs.
    The incoming utility (Eq. 2) is the sum of the volumes; the
    Section 8.4 pricing schemes ({!Traffic.Pricing}) map the
    per-customer split to revenue instead. *)
