(** Checksummed, atomically-written snapshot files for restartable
    runs.

    The paper's cluster jobs restart after worker failure (Appendix
    C.3); our equivalent is a snapshot of engine progress written
    every K rounds. This module owns the *framing*: a magic/version
    header, the SHA-256 digest of the run's configuration and
    topology (so a snapshot can never be resumed against different
    inputs), the round number, an opaque payload, and a SHA-256
    integrity footer over the whole frame. Files are written to
    [path ^ ".tmp"] and renamed into place, so a crash mid-write
    never clobbers the previous valid snapshot.

    The payload is an engine-owned [Marshal] blob. Unmarshaling
    untrusted bytes is unsafe, which is exactly why the checksum and
    digest are verified *before* the payload is handed back: a
    corrupt, truncated or mismatched file yields a typed {!error},
    never a crash or a silently wrong resume. *)

type error =
  | Io of string  (** open/read/write/rename failed *)
  | Bad_magic  (** not a checkpoint file *)
  | Unsupported_version of int
  | Truncated  (** shorter than its header declares *)
  | Corrupt  (** integrity footer does not match the contents *)
  | Config_mismatch of { expected : string; found : string }
      (** written under a different config/topology digest (hex) *)

exception Error of error

val error_to_string : error -> string

val write :
  ?faults:Nsutil.Faults.t -> path:string -> digest:string -> round:int -> string -> unit
(** [write ~path ~digest ~round payload] frames and atomically
    replaces [path]. [digest] must be 32 raw bytes ({!Scrypto.Sha256}
    output). A fault plan firing at site ["checkpoint.corrupt"] flips
    one payload byte after checksumming — deliberate corruption for
    the fault-injection harness. Raises {!Error} [(Io _)] on I/O
    failure. *)

val load : path:string -> digest:string -> (int * string, error) result
(** Validate [path] against [digest] and return [(round, payload)].
    Checks run outside-in: magic, version, framing length, integrity
    footer, then digest; the payload is only returned when all
    pass. *)

val load_exn : path:string -> digest:string -> int * string
(** {!load}, raising {!Error}. *)
