module Graph = Asgraph.Graph
module Csr = Nsutil.Csr
module Route_static = Bgp.Route_static
module Forest = Bgp.Forest

type round_record = {
  round : int;
  utilities : float array;
  projected : float array;
  turned_on : int list;
  turned_off : int list;
  secure_as : int;
  secure_isp : int;
  secure_stub : int;
}

type termination = Stable | Oscillation of { first_round : int } | Max_rounds

type result = {
  baseline : float array;
  initial_secure_as : int;
  initial_secure_isp : int;
  rounds : round_record list;
  final : State.t;
  termination : termination;
}

let sec_of bytes i = Bytes.unsafe_get bytes i = '\001'

(* Would flipping candidate [nc] change the routing tree of
   destination [d]? Conservative (may say yes needlessly), never
   wrongly says no; see the C.4 discussion in the interface. *)
let flip_changes_dest ~cfg ~g ~state ~secure ~(info : Route_static.dest_info)
    ~(base : Forest.scratch) ~stubs_of nc =
  let d = info.dest in
  let turning_on = not (State.full state nc) in
  if turning_on then begin
    let stub_reroutes s =
      Route_static.reachable info s
      && Csr.exists_row info.tie s (fun j -> sec_of base.sec_path j)
    in
    let d_gets_secured =
      d = nc || (Graph.is_stub g d && (not (sec_of secure d)) && Csr.mem_row g.providers d nc)
    in
    if not (sec_of secure d || d_gets_secured) then false
    else if d_gets_secured then true
    else if Csr.exists_row info.tie nc (fun j -> sec_of base.sec_path j) then true
    else
      cfg.Config.stub_tiebreak
      && List.exists (fun s -> (not (sec_of secure s)) && stub_reroutes s) stubs_of.(nc)
  end
  else begin
    (* Turning off removes only nc's own participation (stub upgrades
       are sticky): routing can change only where nc currently holds
       or offers a fully secure route — including d = nc itself, for
       which sec_path nc = secure nc = 1. *)
    sec_of secure d && sec_of base.Forest.sec_path nc
  end

let run (cfg : Config.t) statics ~weight ~state =
  let g = Route_static.graph statics in
  let n = Graph.n g in
  let tiebreak = cfg.tiebreak in
  let base = Forest.make_scratch n in
  let flip = Forest.make_scratch n in
  (* Stub customers per ISP, for projection filters. *)
  let stubs_of = Array.make n [] in
  for i = 0 to n - 1 do
    if Graph.is_isp g i then begin
      let acc = ref [] in
      Graph.iter_customers g i (fun c -> if Graph.is_stub g c then acc := c :: !acc);
      stubs_of.(i) <- !acc
    end
  done;
  (* Baseline: utilities before deployment began (empty state). *)
  let baseline =
    let zeros = Bytes.make n '\000' in
    let into = Array.make n 0.0 in
    for d = 0 to n - 1 do
      let info = Route_static.get statics d in
      Forest.compute info ~tiebreak ~secure:zeros ~use_secp:zeros ~weight base;
      Utility.accumulate cfg.model g info base ~weight ~into
    done;
    into
  in
  (* Per-ISP threshold heterogeneity (Section 8.2 extension). *)
  let theta_factor =
    let rng = Nsutil.Prng.create ~seed:cfg.jitter_seed in
    Array.init n (fun _ ->
        if cfg.theta_jitter = 0.0 then 1.0
        else
          Float.max 0.0
            (1.0 +. (cfg.theta_jitter *. ((2.0 *. Nsutil.Prng.float rng 1.0) -. 1.0))))
  in
  let initial_secure_as = State.secure_count state in
  let initial_secure_isp = State.secure_isp_count state in
  (* Oscillation detection: hash-bucketed copies of every visited
     deployment state, with exact comparison on hash hits. *)
  let seen_states : (int, (int * State.t) list) Hashtbl.t = Hashtbl.create 64 in
  let remember round =
    let signature = State.signature state in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt seen_states signature) in
    match List.find_opt (fun (_, old) -> State.equal_full old state) bucket with
    | Some (first_round, _) -> Some first_round
    | None ->
        Hashtbl.replace seen_states signature ((round, State.copy state) :: bucket);
        None
  in
  ignore (remember 0);
  let rounds = ref [] in
  let termination = ref Max_rounds in
  let round = ref 0 in
  let continue = ref true in
  while !continue && !round < cfg.max_rounds do
    incr round;
    let secure = State.secure_bytes state in
    let use_secp = State.use_secp_bytes state ~stub_tiebreak:cfg.stub_tiebreak in
    (* Candidates: insecure ISPs may turn on; under the incoming
       model with turn-off allowed, secure ISPs may turn off. *)
    let candidates = ref [] in
    for i = n - 1 downto 0 do
      if Graph.is_isp g i && not (State.pinned state i) then begin
        if State.full state i then begin
          if cfg.allow_turn_off && cfg.model = Config.Incoming then
            candidates := i :: !candidates
        end
        else candidates := i :: !candidates
      end
    done;
    let candidates = !candidates in
    let is_candidate = Array.make n false in
    List.iter (fun nc -> is_candidate.(nc) <- true) candidates;
    let utilities = Array.make n 0.0 in
    let projected = Array.make n 0.0 in
    for d = 0 to n - 1 do
      let info = Route_static.get statics d in
      Forest.compute info ~tiebreak ~secure ~use_secp ~weight base;
      Utility.accumulate cfg.model g info base ~weight ~into:utilities;
      List.iter
        (fun nc ->
          let changes =
            flip_changes_dest ~cfg ~g ~state ~secure ~info ~base ~stubs_of nc
          in
          let contrib =
            if changes then begin
              let was_on = State.full state nc in
              let added = if was_on then [] else State.enable state nc in
              if was_on then State.disable state nc;
              Forest.compute info ~tiebreak ~secure ~use_secp ~weight flip;
              let c = Utility.contribution cfg.model g info flip ~weight nc in
              if was_on then ignore (State.enable state nc)
              else State.undo_enable state nc ~added;
              c
            end
            else Utility.contribution cfg.model g info base ~weight nc
          in
          projected.(nc) <- projected.(nc) +. contrib)
        candidates
    done;
    (* Non-candidates project their current utility. *)
    for i = 0 to n - 1 do
      if not is_candidate.(i) then projected.(i) <- utilities.(i)
    done;
    (* Simultaneous flips per Eq. 3. *)
    let turned_on = ref [] in
    let turned_off = ref [] in
    List.iter
      (fun nc ->
        let threshold =
          theta_factor.(nc)
          *. (if State.full state nc then cfg.theta_off else cfg.theta)
        in
        if projected.(nc) > (1.0 +. threshold) *. utilities.(nc) then begin
          if State.full state nc then turned_off := nc :: !turned_off
          else turned_on := nc :: !turned_on
        end)
      candidates;
    List.iter (fun nc -> ignore (State.enable state nc)) !turned_on;
    List.iter (fun nc -> State.disable state nc) !turned_off;
    let record =
      {
        round = !round;
        utilities;
        projected;
        turned_on = List.rev !turned_on;
        turned_off = List.rev !turned_off;
        secure_as = State.secure_count state;
        secure_isp = State.secure_isp_count state;
        secure_stub = State.secure_stub_count state;
      }
    in
    rounds := record :: !rounds;
    if !turned_on = [] && !turned_off = [] then begin
      termination := Stable;
      continue := false
    end
    else begin
      match remember !round with
      | Some first_round ->
          termination := Oscillation { first_round };
          continue := false
      | None -> ()
    end
  done;
  {
    baseline;
    initial_secure_as;
    initial_secure_isp;
    rounds = List.rev !rounds;
    final = state;
    termination = !termination;
  }

let secure_fraction result kind =
  let state = result.final in
  let g = State.graph state in
  let n = Graph.n g in
  match kind with
  | `As -> float_of_int (State.secure_count state) /. float_of_int (max 1 n)
  | `Isp ->
      let isps = Graph.count_class g Asgraph.As_class.Isp in
      float_of_int (State.secure_isp_count state) /. float_of_int (max 1 isps)

let rounds_run result = List.length result.rounds
