(** Analyses behind the paper's tables and figures. *)

type secure_path_stats = {
  secure_pairs : int;  (** ordered (src, dst) pairs whose chosen route is fully secure *)
  reachable_pairs : int;
  fraction : float;  (** secure / all ordered pairs, self-pairs excluded *)
  f_squared : float;  (** the paper's back-of-envelope prediction: (secure ASes / ASes)^2 *)
}

val secure_path_stats :
  Config.t -> Bgp.Route_static.t -> State.t -> weight:float array -> secure_path_stats
(** Section 6.4 / Figure 9: walk every destination's routing forest
    under the given state and count fully secure chosen paths. *)

val tiebreak_distribution :
  Bgp.Route_static.t -> among:(int -> bool) -> (int * int) list
(** Section 6.6 / Figure 10: histogram of tiebreak-set sizes over all
    (source satisfying [among], destination) reachable pairs, as
    [(size, count)] ascending. *)

val diamonds : Bgp.Route_static.t -> early:int list -> (int * int) list
(** Table 1: per early adopter, the number of DIAMOND scenarios — a
    stub destination for which the adopter's tiebreak set contains two
    competing ISPs (counted per unordered ISP pair). *)

val turnoff_incentives :
  Config.t ->
  Bgp.Route_static.t ->
  State.t ->
  weight:float array ->
  (int * int) list
(** Section 7.3: for each fully-secure unpinned ISP, the number of
    destinations for which unilaterally turning S*BGP off strictly
    increases its (incoming-model) utility contribution; only ISPs
    with at least one such destination are listed. *)

val turnoff_incentive_search :
  Config.t -> Bgp.Route_static.t -> weight:float array -> int * int list
(** Section 7.3's search: for each ISP, probe the Figure-13 witness
    state — the content providers, the ISP and its transitive
    providers secure, everything else insecure — and test whether the
    ISP then has a per-destination incentive to turn off. Returns
    (ISPs examined, ISPs with an incentive). *)

val chain_reactions : Engine.result -> Asgraph.Graph.t -> (int * int) list
(** Figure 7: pairs [(n, m)] where [n] deployed in some round r, [m]
    deployed in round r+1, and [n] and [m] are adjacent — the "longer
    secure paths sustain deployment" mechanism. *)

val never_secure_isps : Engine.result -> int list
(** The ISPs that remain insecure at termination (Section 5.3). *)

val mean_utility_change :
  Engine.result -> among:(int -> bool) -> float
(** Mean final-utility / baseline-utility ratio over nodes selected by
    [among] with nonzero baseline (Section 5.6). Uses the last round's
    utility vector. *)
