(** Pricing models mapping transited customer traffic to revenue
    (Section 8.4, "mapping revenue to traffic volume").

    The paper's utility is linear in volume; real ISPs also bill in
    flat-rate capacity tiers or concave (committed + burst) schedules.
    These schemes let experiments check that the deployment incentives
    survive the change of billing model. *)

type scheme =
  | Linear  (** revenue = volume (the paper's model) *)
  | Tiered of { step : float }
      (** capacity tiers: each customer pays per started block of
          [step] volume units *)
  | Concave of { exponent : float }
      (** diminishing returns: revenue = volume^exponent per customer,
          [0 < exponent <= 1] *)

val revenue_of_customer : scheme -> float -> float
(** Revenue earned from one customer transiting the given volume. *)

val revenue : scheme -> float list -> float
(** Total revenue over per-customer volumes. *)

val scheme_to_string : scheme -> string

val rank_agreement : float array -> float array -> float
(** Kendall-style pairwise rank agreement between two score vectors
    over the same nodes: the fraction of (i, j) pairs ordered the same
    way (ties ignored). 1.0 = identical rankings. *)
