type scheme = Linear | Tiered of { step : float } | Concave of { exponent : float }

let revenue_of_customer scheme volume =
  if volume <= 0.0 then 0.0
  else begin
    match scheme with
    | Linear -> volume
    | Tiered { step } ->
        if step <= 0.0 then invalid_arg "Pricing: step must be positive";
        Float.ceil (volume /. step)
    | Concave { exponent } ->
        if exponent <= 0.0 || exponent > 1.0 then
          invalid_arg "Pricing: exponent must be in (0, 1]";
        volume ** exponent
  end

let revenue scheme volumes =
  List.fold_left (fun acc v -> acc +. revenue_of_customer scheme v) 0.0 volumes

let scheme_to_string = function
  | Linear -> "linear"
  | Tiered { step } -> Printf.sprintf "tiered(step=%g)" step
  | Concave { exponent } -> Printf.sprintf "concave(%g)" exponent

let rank_agreement a b =
  if Array.length a <> Array.length b then invalid_arg "Pricing.rank_agreement";
  let n = Array.length a in
  let agree = ref 0 in
  let pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let da = compare a.(i) a.(j) and db = compare b.(i) b.(j) in
      if da <> 0 && db <> 0 then begin
        incr pairs;
        if da = db then incr agree
      end
    done
  done;
  if !pairs = 0 then 1.0 else float_of_int !agree /. float_of_int !pairs
