lib/traffic/pricing.ml: Array Float List Printf
