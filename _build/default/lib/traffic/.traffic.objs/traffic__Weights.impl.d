lib/traffic/weights.ml: Array Asgraph
