lib/traffic/weights.mli: Asgraph
