lib/traffic/pricing.mli:
