(** The traffic-volume model of Section 3.1.

    Content providers jointly originate a fraction [x] of all traffic
    (split equally among them); every other AS has unit weight. *)

val assign : Asgraph.Graph.t -> cp_fraction:float -> float array
(** Per-node origination weights. Requires [0 <= cp_fraction < 1];
    with no CPs in the graph the fraction is ignored and every node
    gets weight 1. *)

val cp_weight : n:int -> cps:int -> cp_fraction:float -> float
(** The weight assigned to each CP ([w_CP] in the paper): with [n]
    ASes of which [cps] are content providers,
    [w_CP = x (n - cps) / ((1 - x) cps)]. *)

val uniform : Asgraph.Graph.t -> float array
(** All-ones weights. *)

val total : float array -> float

val originated_fraction : Asgraph.Graph.t -> float array -> float
(** Fraction of all traffic originated by the CPs under the given
    weights (sanity check: [assign] makes this [cp_fraction]). *)
