module Graph = Asgraph.Graph
module As_class = Asgraph.As_class

let cp_weight ~n ~cps ~cp_fraction =
  if cps = 0 then 0.0
  else cp_fraction *. float_of_int (n - cps) /. ((1.0 -. cp_fraction) *. float_of_int cps)

let uniform g = Array.make (Graph.n g) 1.0

let assign g ~cp_fraction =
  if cp_fraction < 0.0 || cp_fraction >= 1.0 then invalid_arg "Weights.assign";
  let n = Graph.n g in
  let cps = Graph.count_class g As_class.Cp in
  let w = Array.make n 1.0 in
  if cps > 0 then begin
    let wcp = cp_weight ~n ~cps ~cp_fraction in
    for i = 0 to n - 1 do
      if Graph.is_cp g i then w.(i) <- wcp
    done
  end;
  w

let total w = Array.fold_left ( +. ) 0.0 w

let originated_fraction g w =
  let cp_sum = ref 0.0 in
  Array.iteri (fun i wi -> if Graph.is_cp g i then cp_sum := !cp_sum +. wi) w;
  let t = total w in
  if t = 0.0 then 0.0 else !cp_sum /. t
